// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Higher-level code is written either as run-to-completion continuations
// (see task.go) — the allocation-free hot path — or as processes (see
// process.go): goroutines that run one at a time, interleaved with event
// dispatch. Both styles share one scheduler, so the whole simulation is
// sequential and reproducible regardless of how it is expressed.
//
// Internally events live in pooled, generation-counted nodes: firing or
// cancelling an event returns its node to a free list, so steady-state
// simulation performs no per-event heap allocations. Same-instant events
// (the dominant Schedule(0, fn) wake-up pattern) bypass the priority
// queue entirely through a FIFO ring.
//
// All timestamps are time.Duration offsets from the simulation start.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrDeadlock is returned by Run when live processes or tasks remain but
// no events are scheduled, meaning the simulation can never make progress
// again.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// ErrRunning is returned by Run and RunUntil when called re-entrantly —
// from inside an event callback, or from a second goroutine while a run
// is in progress.
var ErrRunning = errors.New("sim: engine already running")

const maxDuration = time.Duration(math.MaxInt64)

// eventNode is the pooled storage behind an Event handle. Nodes are
// recycled through the engine's free list when their event fires or is
// cancelled; gen increments on every recycle so stale handles from a
// previous use can never act on the node's next occupant.
type eventNode struct {
	fn    func()
	fnArg func(any)
	arg   any
	at    time.Duration
	seq   uint64 // tiebreaker for deterministic ordering
	gen   uint64 // incremented on recycle; Event handles must match
	pos   int32  // heap index, posFIFO in the ring, posIdle when free
}

const (
	posIdle int32 = -1
	posFIFO int32 = -2
)

// dead reports whether a ring entry was cancelled in place.
func (n *eventNode) dead() bool { return n.fn == nil && n.fnArg == nil }

// Event is a handle to a scheduled callback. It is a small value (not a
// pointer): the zero Event is valid and refers to nothing. A handle stays
// usable after its event fires or is cancelled — Cancel and the accessors
// recognize it as stale and do nothing — so callers may retain handles
// without lifetime bookkeeping even though the underlying storage is
// pooled and reused.
type Event struct {
	n   *eventNode
	gen uint64
}

// Pending reports whether the event is still scheduled to fire.
func (ev Event) Pending() bool { return ev.n != nil && ev.n.gen == ev.gen }

// At returns the virtual time at which the event will fire, or zero if
// the event already fired or was cancelled.
func (ev Event) At() time.Duration {
	if !ev.Pending() {
		return 0
	}
	return ev.n.at
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now time.Duration
	seq uint64

	// heap is a 4-ary min-heap over (at, seq) holding future events.
	heap []*eventNode

	// fifo is the same-instant fast path: events scheduled for the
	// current instant are appended here and drained in order (interleaved
	// with any same-instant heap events by seq), skipping heap sifts for
	// the dominant Schedule(0, fn) pattern. fifoHead indexes the next
	// entry; cancelled entries are tombstoned in place and skipped.
	fifo     []*eventNode
	fifoHead int

	free    []*eventNode // recycled nodes
	pending int          // scheduled, not-yet-cancelled events
	live    int          // processes and tasks that have not completed
	running bool

	// arena is per-engine scratch storage that survives Reset: packages
	// register an ArenaKey once and stash recycled per-run state under
	// it (see arena.go).
	arena []any
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Reset returns the engine to its initial state — clock at zero, no
// pending events, no live processes or tasks — while keeping its pooled
// storage: the node free list, the heap and ring backing arrays, and the
// scratch arena (see arena.go) all survive, so a recycled engine runs its
// next simulation with the allocation profile of a warmed-up one. Every
// still-pending event is cancelled and its node recycled; generation
// counters make any handles retained from the previous run permanently
// stale, exactly as if their events had fired.
//
// Reset panics if called while Run or RunUntil is in progress.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset called while engine is running")
	}
	for i, n := range e.heap {
		e.recycle(n)
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	for i := e.fifoHead; i < len(e.fifo); i++ {
		// Tombstoned (cancelled-in-place) entries were never returned to
		// the free list; recycle handles them identically to live ones.
		e.recycle(e.fifo[i])
		e.fifo[i] = nil
	}
	e.fifo = e.fifo[:0]
	e.fifoHead = 0
	e.now = 0
	e.seq = 0
	e.pending = 0
	e.live = 0
}

// alloc takes a node from the free list, minting one only when empty.
func (e *Engine) alloc() *eventNode {
	if n := len(e.free); n > 0 {
		node := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return node
	}
	return &eventNode{pos: posIdle}
}

// recycle invalidates all outstanding handles to n and returns it to the
// free list.
func (e *Engine) recycle(n *eventNode) {
	n.gen++
	n.fn, n.fnArg, n.arg = nil, nil, nil
	n.pos = posIdle
	e.free = append(e.free, n)
}

func (e *Engine) schedule(at time.Duration, fn func(), fnArg func(any), arg any) Event {
	e.seq++
	n := e.alloc()
	n.fn, n.fnArg, n.arg = fn, fnArg, arg
	n.at, n.seq = at, e.seq
	e.pending++
	if at == e.now {
		// Same-instant fast path: seq rises monotonically, so appending
		// keeps the ring in dispatch order with no sifting.
		n.pos = posFIFO
		e.fifo = append(e.fifo, n)
	} else {
		e.heapPush(n)
	}
	return Event{n: n, gen: n.gen}
}

// Schedule registers fn to run after delay of virtual time. A negative
// delay is treated as zero. Events scheduled for the same instant fire in
// scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, fn, nil, nil)
}

// ScheduleArg is Schedule for callbacks that take one argument. It exists
// so hot paths can reuse a single long-lived fn instead of minting a
// capturing closure per event: the argument rides in the pooled event
// node, making the whole scheduling operation allocation-free.
func (e *Engine) ScheduleArg(delay time.Duration, fn func(arg any), arg any) Event {
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, nil, fn, arg)
}

// ScheduleAt registers fn to run at absolute virtual time at. Times in the
// past are clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) Event {
	if at < e.now {
		at = e.now
	}
	return e.schedule(at, fn, nil, nil)
}

// Cancel removes a pending event so it never fires. Cancelling an event
// that already fired, was already cancelled, or is the zero Event is a
// no-op — including when the event's pooled node has since been reused by
// a newer event, which the handle's generation check detects.
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen {
		return
	}
	e.pending--
	if n.pos >= 0 {
		e.heapRemove(int(n.pos))
		e.recycle(n)
		return
	}
	// In the FIFO ring: tombstone in place (the ring cannot be compacted
	// cheaply); the dispatcher recycles it when the head reaches it. The
	// generation bump makes any further handle use stale immediately.
	n.gen++
	n.fn, n.fnArg, n.arg = nil, nil, nil
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return e.pending }

// next prunes cancelled ring entries and returns the next event to
// dispatch without removing it, or nil when none remain.
func (e *Engine) next() *eventNode {
	for e.fifoHead < len(e.fifo) {
		if n := e.fifo[e.fifoHead]; n.dead() {
			e.fifoHead++
			e.recycle(n)
			continue
		}
		break
	}
	if e.fifoHead == len(e.fifo) {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
	var f *eventNode
	if e.fifoHead < len(e.fifo) {
		f = e.fifo[e.fifoHead]
	}
	if len(e.heap) == 0 {
		return f
	}
	h := e.heap[0]
	if f == nil || eventLess(h, f) {
		return h
	}
	return f
}

// pop removes n — which must be the node returned by next — from its
// container.
func (e *Engine) pop(n *eventNode) {
	if n.pos == posFIFO {
		e.fifoHead++
		return
	}
	e.heapPop()
}

// Run dispatches events until none remain. It returns ErrDeadlock if live
// processes or tasks remain blocked with no way to wake them, and
// ErrRunning when called re-entrantly.
func (e *Engine) Run() error {
	return e.RunUntil(maxDuration)
}

// RunUntil dispatches events with timestamps <= limit, then advances the
// clock to limit if it ran out of events earlier. It returns ErrDeadlock
// if it stops with live processes or tasks still blocked and no pending
// events, and ErrRunning when called re-entrantly (from an event callback
// or while another RunUntil is in progress).
func (e *Engine) RunUntil(limit time.Duration) error {
	if e.running {
		return ErrRunning
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		n := e.next()
		if n == nil {
			if e.live > 0 {
				return ErrDeadlock
			}
			if limit != maxDuration && limit > e.now {
				e.now = limit
			}
			return nil
		}
		if n.at > limit {
			if limit > e.now {
				e.now = limit
			}
			return nil
		}
		if n.at < e.now {
			// Queue invariants guarantee this cannot happen; guard anyway.
			panic(fmt.Sprintf("sim: event at %v fired after clock %v", n.at, e.now))
		}
		e.pop(n)
		e.pending--
		e.now = n.at
		fn, fnArg, arg := n.fn, n.fnArg, n.arg
		// Recycle before dispatch: the handle is stale the moment the
		// event fires, and the callback may immediately want a fresh node.
		e.recycle(n)
		if fn != nil {
			fn()
		} else {
			fnArg(arg)
		}
	}
}

// eventLess orders events by (time, sequence number).
func eventLess(a, b *eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The priority queue is a hand-rolled 4-ary min-heap: shallower than a
// binary heap (fewer cache-missing levels per sift) and free of the
// container/heap interface boxing that allocated on every Push.

func (e *Engine) heapPush(n *eventNode) {
	n.pos = int32(len(e.heap))
	e.heap = append(e.heap, n)
	e.siftUp(len(e.heap) - 1)
}

// heapPop removes the minimum element (heap[0]).
func (e *Engine) heapPop() {
	last := len(e.heap) - 1
	if last > 0 {
		e.heap[0] = e.heap[last]
		e.heap[0].pos = 0
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 1 {
		e.siftDown(0)
	}
}

// heapRemove removes the element at index i.
func (e *Engine) heapRemove(i int) {
	last := len(e.heap) - 1
	if i != last {
		moved := e.heap[last]
		e.heap[i] = moved
		moved.pos = int32(i)
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	n := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := e.heap[parent]
		if !eventLess(n, p) {
			break
		}
		e.heap[i] = p
		p.pos = int32(i)
		i = parent
	}
	e.heap[i] = n
	n.pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := e.heap[i]
	size := len(e.heap)
	for {
		first := i<<2 + 1
		if first >= size {
			break
		}
		min := first
		end := first + 4
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if eventLess(e.heap[c], e.heap[min]) {
				min = c
			}
		}
		if !eventLess(e.heap[min], n) {
			break
		}
		e.heap[i] = e.heap[min]
		e.heap[i].pos = int32(i)
		i = min
	}
	e.heap[i] = n
	n.pos = int32(i)
}
