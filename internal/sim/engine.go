// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Higher-level code is written as processes (see process.go): goroutines
// that run one at a time, interleaved with event dispatch, so that the
// whole simulation is sequential and reproducible even though it is
// expressed as concurrent-looking code.
//
// All timestamps are time.Duration offsets from the simulation start.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrDeadlock is returned by Run when live processes remain but no events
// are scheduled, meaning the simulation can never make progress again.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       time.Duration
	seq      uint64 // tiebreaker for deterministic ordering
	index    int    // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// eventHeap orders events by (time, sequence number).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now       time.Duration
	seq       uint64
	events    eventHeap
	liveProcs int
	running   bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule registers fn to run after delay of virtual time. A negative
// delay is treated as zero. Events scheduled for the same instant fire in
// scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.events, ev)
	return ev
}

// ScheduleAt registers fn to run at absolute virtual time at. Times in the
// past are clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	return e.Schedule(at-e.now, fn)
}

// Cancel removes a pending event so it never fires. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
		ev.index = -1
	}
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// step pops and dispatches the next event. It reports whether an event was
// dispatched.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			// Heap invariant guarantees this cannot happen; guard anyway.
			panic(fmt.Sprintf("sim: event at %v fired after clock %v", ev.at, e.now))
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until none remain. It returns ErrDeadlock if live
// processes remain blocked with no way to wake them.
func (e *Engine) Run() error {
	return e.RunUntil(time.Duration(math.MaxInt64))
}

// RunUntil dispatches events with timestamps <= limit, then advances the
// clock to limit if it ran out of events earlier. It returns ErrDeadlock if
// it stops with live processes still blocked and no pending events.
func (e *Engine) RunUntil(limit time.Duration) error {
	if e.running {
		return errors.New("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && e.events[0].at <= limit {
		e.step()
	}
	if len(e.events) == 0 {
		if e.liveProcs > 0 {
			return ErrDeadlock
		}
		if limit != time.Duration(math.MaxInt64) && limit > e.now {
			e.now = limit
		}
		return nil
	}
	if limit > e.now {
		e.now = limit
	}
	return nil
}
