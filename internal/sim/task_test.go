package sim

import (
	"errors"
	"testing"
	"time"
)

func TestSpawnRunsAfterQueuedEvents(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(0, func() { got = append(got, "queued") })
	e.Spawn("t", func() { got = append(got, "task") }).End()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "queued" || got[1] != "task" {
		t.Fatalf("order = %v, want [queued task]", got)
	}
}

func TestTaskAfterChain(t *testing.T) {
	e := NewEngine()
	var task *Task
	var times []time.Duration
	step2 := func() {
		times = append(times, e.Now())
		task.End()
	}
	task = e.Spawn("chain", func() {
		times = append(times, e.Now())
		task.After(3*time.Second, step2)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 2 || times[0] != 0 || times[1] != 3*time.Second {
		t.Fatalf("step times = %v, want [0 3s]", times)
	}
	if !task.Done() {
		t.Error("task not done after End")
	}
}

func TestTaskWithoutEndDeadlocks(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func() {}) // never calls End
	if err := e.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestTaskCompletion(t *testing.T) {
	e := NewEngine()
	var task *Task
	task = e.Spawn("worker", func() {
		task.After(time.Second, task.End)
	})
	var joinedAt time.Duration = -1
	task.Completion().OnFire(func() { joinedAt = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joinedAt != time.Second {
		t.Errorf("completion fired at %v, want 1s", joinedAt)
	}
	// Completion after End returns an already-fired signal.
	fired := false
	task.Completion().OnFire(func() { fired = true })
	if !fired {
		t.Error("Completion of ended task did not fire synchronously")
	}
	task.End() // second End is a no-op
	if task.Name() != "worker" || task.Engine() != e {
		t.Error("task accessors broken")
	}
}

func TestTaskAndProcessInterleaveDeterministically(t *testing.T) {
	// A task and a process doing the same sleep pattern must alternate in
	// spawn order at every instant.
	e := NewEngine()
	var got []string
	p := e.Go("proc", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, "proc")
			p.Sleep(time.Second)
		}
	})
	var task *Task
	n := 0
	var step func()
	step = func() {
		got = append(got, "task")
		n++
		if n < 3 {
			task.After(time.Second, step)
			return
		}
		task.End()
	}
	task = e.Spawn("task", step)
	_ = p
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"proc", "task", "proc", "task", "proc", "task"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave = %v, want %v", got, want)
		}
	}
}

// --- RunUntil re-entrancy (exported ErrRunning sentinel) ---

func TestRunInsideCallbackReturnsErrRunning(t *testing.T) {
	e := NewEngine()
	var inner, outer error
	e.Schedule(time.Second, func() {
		inner = e.Run()
	})
	outer = e.Run()
	if outer != nil {
		t.Fatalf("outer Run: %v", outer)
	}
	if !errors.Is(inner, ErrRunning) {
		t.Fatalf("nested Run = %v, want ErrRunning", inner)
	}
}

func TestRunUntilInsideCallbackReturnsErrRunning(t *testing.T) {
	e := NewEngine()
	var inner error
	e.Schedule(0, func() {
		inner = e.RunUntil(5 * time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(inner, ErrRunning) {
		t.Fatalf("nested RunUntil = %v, want ErrRunning", inner)
	}
	// After the run finishes the engine is reusable.
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	if err := e.Run(); err != nil || !fired {
		t.Fatalf("engine not reusable after nested-run error: err=%v fired=%v", err, fired)
	}
}

// --- pooled-node and ring edge cases ---

func TestCancelAfterFireIsStale(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.Schedule(time.Second, func() { fired++ })
	e.Schedule(2*time.Second, func() {}) // keeps the run going past 1s
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if ev.Pending() {
		t.Error("handle still pending after fire")
	}
	if ev.At() != 0 {
		t.Errorf("At of fired event = %v, want 0", ev.At())
	}
	e.Cancel(ev) // must be a no-op
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after stale cancel, want 0", e.Pending())
	}
}

func TestStaleCancelDoesNotKillNodeReuse(t *testing.T) {
	// Fire A (recycling its node), schedule B (reusing that node), then
	// cancel through A's stale handle: B must still fire.
	e := NewEngine()
	var evA Event
	firedB, firedC := false, false
	evA = e.Schedule(0, func() {})
	e.Schedule(time.Second, func() {
		// The free list is LIFO: the first Schedule reuses this callback's
		// just-recycled node, the second reuses evA's.
		e.Schedule(time.Second, func() { firedB = true })
		e.Schedule(time.Second, func() { firedC = true })
		e.Cancel(evA)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !firedB || !firedC {
		t.Errorf("stale Cancel killed a node's next occupant: B=%v C=%v", firedB, firedC)
	}
}

func TestCancelSameInstantSiblingFromCallback(t *testing.T) {
	// Cancelling a same-instant sibling from inside a firing callback
	// exercises the FIFO-ring tombstone path: the sibling is already in
	// the ring behind the running event.
	e := NewEngine()
	var got []int
	var sibling Event
	e.Schedule(time.Second, func() {
		got = append(got, 1)
		e.Cancel(sibling)
	})
	sibling = e.Schedule(time.Second, func() { got = append(got, 2) })
	e.Schedule(time.Second, func() { got = append(got, 3) })
	// Force all three into the ring by advancing the clock to 1s first:
	// they are heap events here, but the dispatcher moves through them at
	// one instant, so schedule ring events from inside too.
	e.Schedule(time.Second, func() {
		ring := e.Schedule(0, func() { got = append(got, 4) })
		e.Schedule(0, func() { got = append(got, 5) })
		e.Cancel(ring) // tombstones a not-yet-dispatched ring entry
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	var got []int
	fn := func(arg any) { got = append(got, arg.(int)) }
	e.ScheduleArg(2*time.Second, fn, 2)
	e.ScheduleArg(time.Second, fn, 1)
	e.ScheduleArg(-time.Second, fn, 0) // negative delay clamps to now
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPoolReuseKeepsOrdering(t *testing.T) {
	// Drive enough fire/schedule cycles through the pool that nodes are
	// reused many times, and check ordering still holds.
	e := NewEngine()
	var last time.Duration = -1
	ordered := true
	count := 0
	var tick func()
	tick = func() {
		now := e.Now()
		if now < last {
			ordered = false
		}
		last = now
		count++
		if count < 1000 {
			e.Schedule(time.Duration(count%7)*time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ordered {
		t.Error("clock went backwards under pool reuse")
	}
	if count != 1000 {
		t.Errorf("count = %d, want 1000", count)
	}
}
