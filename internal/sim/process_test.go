package sim

import (
	"testing"
	"time"
)

// run drives the engine and fails the test on error.
func run(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var woke time.Duration
	e.Go("sleeper", func(p *Process) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	run(t, e)
	if woke != 5*time.Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Process) {
		trace = append(trace, "a0")
		p.Sleep(2 * time.Second)
		trace = append(trace, "a2")
	})
	e.Go("b", func(p *Process) {
		trace = append(trace, "b0")
		p.Sleep(1 * time.Second)
		trace = append(trace, "b1")
		p.Sleep(2 * time.Second)
		trace = append(trace, "b3")
	})
	run(t, e)
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalAwaitAndFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var woke [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		e.Go("waiter", func(p *Process) {
			p.Await(s)
			woke[i] = p.Now()
		})
	}
	e.Go("firer", func(p *Process) {
		p.Sleep(3 * time.Second)
		s.Fire()
	})
	run(t, e)
	for i, w := range woke {
		if w != 3*time.Second {
			t.Errorf("waiter %d woke at %v, want 3s", i, w)
		}
	}
	if !s.Fired() {
		t.Error("signal not marked fired")
	}
}

func TestAwaitAlreadyFired(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	s.Fire()
	s.Fire() // double fire is a no-op
	var woke time.Duration = -1
	e.Go("late", func(p *Process) {
		p.Sleep(time.Second)
		p.Await(s) // must not block
		woke = p.Now()
	})
	run(t, e)
	if woke != time.Second {
		t.Errorf("late waiter woke at %v, want 1s", woke)
	}
}

func TestProcessJoin(t *testing.T) {
	e := NewEngine()
	var joined time.Duration
	a := e.Go("a", func(p *Process) { p.Sleep(2 * time.Second) })
	b := e.Go("b", func(p *Process) { p.Sleep(5 * time.Second) })
	e.Go("joiner", func(p *Process) {
		p.Join(a, b)
		joined = p.Now()
	})
	run(t, e)
	if joined != 5*time.Second {
		t.Errorf("joined at %v, want 5s", joined)
	}
	if !a.Done() || !b.Done() {
		t.Error("processes not marked done")
	}
}

func TestBarrierReleasesBatch(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 3)
	var woke []time.Duration
	for i := 0; i < 3; i++ {
		delay := time.Duration(i+1) * time.Second
		e.Go("w", func(p *Process) {
			p.Sleep(delay)
			b.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	run(t, e)
	if len(woke) != 3 {
		t.Fatalf("only %d processes released", len(woke))
	}
	for _, w := range woke {
		if w != 3*time.Second {
			t.Errorf("released at %v, want 3s (last arrival)", w)
		}
	}
	if b.Rounds() != 1 {
		t.Errorf("Rounds = %d, want 1", b.Rounds())
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *Process) {
			for r := 0; r < 5; r++ {
				p.Sleep(time.Second)
				b.Wait(p)
			}
			rounds++
		})
	}
	run(t, e)
	if rounds != 2 {
		t.Fatalf("processes finished = %d, want 2", rounds)
	}
	if b.Rounds() != 5 {
		t.Errorf("Rounds = %d, want 5", b.Rounds())
	}
}

func TestBarrierSizeOne(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 1)
	done := false
	e.Go("solo", func(p *Process) {
		b.Wait(p)
		done = true
	})
	run(t, e)
	if !done {
		t.Error("size-1 barrier blocked")
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var holds []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("worker", func(p *Process) {
			r.Acquire(p)
			holds = append(holds, p.Now())
			p.Sleep(time.Second)
			r.Release()
		})
	}
	run(t, e)
	want := []time.Duration{0, time.Second, 2 * time.Second}
	if len(holds) != len(want) {
		t.Fatalf("holds = %v", holds)
	}
	for i := range want {
		if holds[i] != want[i] {
			t.Fatalf("holds = %v, want %v (serialized)", holds, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("worker", func(p *Process) {
			r.Acquire(p)
			p.Sleep(time.Second)
			r.Release()
			done = append(done, p.Now())
		})
	}
	run(t, e)
	// Two run in [0,1), two in [1,2).
	want := []time.Duration{time.Second, time.Second, 2 * time.Second, 2 * time.Second}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if r.InUse() != 0 {
		t.Errorf("InUse = %d after all released", r.InUse())
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Process) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Process) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			q.Put(i)
		}
		q.Close()
	})
	run(t, e)
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO order", got)
		}
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	total := 0
	for i := 0; i < 3; i++ {
		e.Go("consumer", func(p *Process) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				total += v
				p.Sleep(time.Second)
			}
		})
	}
	e.Go("producer", func(p *Process) {
		for i := 1; i <= 9; i++ {
			q.Put(i)
		}
		q.Close()
	})
	run(t, e)
	if total != 45 {
		t.Errorf("total = %d, want 45", total)
	}
}

func TestQueueCloseUnblocksGetters(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	unblocked := 0
	for i := 0; i < 2; i++ {
		e.Go("consumer", func(p *Process) {
			_, ok := q.Get(p)
			if !ok {
				unblocked++
			}
		})
	}
	e.Go("closer", func(p *Process) {
		p.Sleep(time.Second)
		q.Close()
	})
	run(t, e)
	if unblocked != 2 {
		t.Errorf("unblocked = %d, want 2", unblocked)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	e.Go("stuck", func(p *Process) {
		p.Await(s) // never fired
	})
	if err := e.Run(); err != ErrDeadlock {
		t.Errorf("Run = %v, want ErrDeadlock", err)
	}
}

func TestProcessCompletionSignal(t *testing.T) {
	e := NewEngine()
	p1 := e.Go("short", func(p *Process) { p.Sleep(time.Second) })
	var saw time.Duration
	e.Go("watcher", func(p *Process) {
		p.Await(p1.Completion())
		saw = p.Now()
	})
	run(t, e)
	if saw != time.Second {
		t.Errorf("completion observed at %v, want 1s", saw)
	}
}
