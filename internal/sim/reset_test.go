package sim

import (
	"testing"
	"time"
)

// TestResetDropsPendingWork proves Reset restores the initial state: the
// clock rewinds, every pending event (heap, ring, and tombstoned ring
// entries alike) is discarded, and handles minted before the Reset are
// permanently stale.
func TestResetDropsPendingWork(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	heapEv := e.Schedule(2*time.Second, func() { fired++ })
	ringEv := e.Schedule(0, func() { fired++ })
	dead := e.Schedule(0, func() { fired++ })
	e.Cancel(dead) // tombstoned in the ring, not yet recycled

	e.Reset()
	if e.Now() != 0 {
		t.Errorf("Now() = %v after Reset, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after Reset, want 0", e.Pending())
	}
	if heapEv.Pending() || ringEv.Pending() {
		t.Error("pre-Reset handles still report pending")
	}
	e.Cancel(heapEv) // stale: must be a no-op, not corruption
	if err := e.Run(); err != nil {
		t.Fatalf("Run on reset engine: %v", err)
	}
	if fired != 0 {
		t.Errorf("%d pre-Reset events fired after Reset", fired)
	}

	// The engine is fully usable again and the clock starts from zero.
	var at time.Duration
	e.Schedule(3*time.Millisecond, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Millisecond {
		t.Errorf("post-Reset event fired at %v, want 3ms", at)
	}
}

func TestResetWhileRunningPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset inside a callback did not panic")
			}
		}()
		e.Reset()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestResetKeepsNodePoolWarm proves the point of Reset over NewEngine: a
// recycled engine replays a workload without growing its node pool.
func TestResetKeepsNodePoolWarm(t *testing.T) {
	e := NewEngine()
	run := func() {
		for i := 0; i < 64; i++ {
			e.Schedule(time.Duration(i)*time.Millisecond, func() {})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Reset()
	}
	run() // grow pools once
	if allocs := testing.AllocsPerRun(10, run); allocs > 1 {
		t.Errorf("recycled engine allocates %.0f objects per run, want ~0", allocs)
	}
}

func TestArenaSurvivesReset(t *testing.T) {
	k1 := NewArenaKey()
	k2 := NewArenaKey()
	e := NewEngine()
	if e.Arena(k1) != nil {
		t.Error("unset arena slot not nil")
	}
	e.SetArena(k1, "scratch")
	e.SetArena(k2, 7)
	e.Reset()
	if e.Arena(k1) != "scratch" || e.Arena(k2) != 7 {
		t.Errorf("arena lost across Reset: %v, %v", e.Arena(k1), e.Arena(k2))
	}
	// Slots are per-engine, not global.
	if e2 := NewEngine(); e2.Arena(k1) != nil {
		t.Error("arena slot leaked across engines")
	}
}

func TestSignalRearm(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	s.Fire()
	if !s.Fired() {
		t.Fatal("signal not fired")
	}
	s.Rearm()
	if s.Fired() {
		t.Error("re-armed signal still fired")
	}
	ran := false
	s.OnFire(func() { ran = true })
	defer func() {
		if recover() == nil {
			t.Error("Rearm with parked waiters did not panic")
		}
	}()
	s.Rearm()
	_ = ran
}
