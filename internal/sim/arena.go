package sim

import "sync/atomic"

// The scratch arena gives packages layered on the engine a place to park
// recycled per-run state (worker structs, op free lists, flow batches)
// that survives Engine.Reset. Each package registers one ArenaKey at init
// time and stores whatever it likes under it; because the arena rides on
// the engine, the stashed state inherits the engine's affinity — a pooled
// engine reused by one scheduler worker carries its warmed-up scratch
// with it, and no cross-engine synchronization is ever needed.

// arenaKeys counts registered keys process-wide so every ArenaKey indexes
// a distinct slot on every engine.
var arenaKeys atomic.Int64

// ArenaKey identifies one per-engine arena slot. Obtain keys with
// NewArenaKey (typically in a package-level var) and treat them as
// opaque; the zero ArenaKey is the first registered key, so always use
// NewArenaKey rather than a zero value.
type ArenaKey struct{ idx int }

// NewArenaKey registers a new arena slot and returns its key. Safe for
// concurrent use; intended to be called once per package from a var
// initializer.
func NewArenaKey() ArenaKey {
	return ArenaKey{idx: int(arenaKeys.Add(1)) - 1}
}

// Arena returns the value stored under k on this engine, or nil if
// nothing has been stored yet (or the last SetArena stored nil).
func (e *Engine) Arena(k ArenaKey) any {
	if k.idx < len(e.arena) {
		return e.arena[k.idx]
	}
	return nil
}

// SetArena stores v under k on this engine. The value survives
// Engine.Reset — the arena exists precisely so recycled engines keep
// their warmed-up scratch across runs.
func (e *Engine) SetArena(k ArenaKey, v any) {
	for len(e.arena) <= k.idx {
		e.arena = append(e.arena, nil)
	}
	e.arena[k.idx] = v
}
