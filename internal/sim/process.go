package sim

import (
	"fmt"
	"time"
)

// Process is a simulated thread of control. Each process runs on its own
// goroutine, but the engine guarantees that at most one process (or event
// callback) executes at a time, so process code needs no locking and the
// simulation is fully deterministic.
//
// Processes are the readability layer over the scheduler: blocking calls
// cost two goroutine handoffs each, so hot inner loops should use the
// continuation Task API (task.go) instead. Both run on the same event
// queue and interleave deterministically.
//
// Process methods that block (Sleep, Await, Acquire, ...) must only be
// called from the process's own goroutine.
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	doneSg *Signal

	// stepFn is the step method bound once at spawn, so waking the
	// process (Schedule(0, stepFn)) never mints a new closure.
	stepFn func()
}

// Go spawns a new process executing fn. The process starts at the current
// virtual time (after already-queued events at this instant).
func (e *Engine) Go(name string, fn func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		doneSg: NewSignal(e),
	}
	p.stepFn = p.step
	e.live++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.eng.live--
		p.doneSg.Fire()
		p.yield <- struct{}{}
	}()
	e.Schedule(0, p.stepFn)
	return p
}

// step transfers control to the process goroutine and waits for it to
// yield back. It is always invoked from the engine's event loop.
func (p *Process) step() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park gives control back to the engine. The process stays blocked until
// something calls step again (typically a scheduled event or a signal).
func (p *Process) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Name returns the process name given to Go.
func (p *Process) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Process) Now() time.Duration { return p.eng.now }

// Done reports whether the process function has returned.
func (p *Process) Done() bool { return p.done }

// Completion returns a signal that fires when the process function
// returns. Await it to join the process.
func (p *Process) Completion() *Signal { return p.doneSg }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero.
func (p *Process) Sleep(d time.Duration) {
	p.eng.Schedule(d, p.stepFn)
	p.park()
}

// Yield suspends the process until all other events scheduled for the
// current instant have run.
func (p *Process) Yield() { p.Sleep(0) }

// Await blocks until the signal fires. If the signal has already fired it
// returns immediately.
func (p *Process) Await(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p.stepFn)
	p.park()
}

// Join blocks until all the given processes have completed.
func (p *Process) Join(procs ...*Process) {
	for _, q := range procs {
		p.Await(q.Completion())
	}
}

// Signal is a one-shot broadcast: processes Await it (and continuations
// register OnFire), Fire wakes them all. Once fired, Await returns
// immediately and OnFire runs its callback immediately, forever after.
type Signal struct {
	eng   *Engine
	fired bool

	// waiters holds parked processes (their cached step closures) and
	// OnFire continuations in one arrival-ordered list, so both styles
	// wake in exactly the order they blocked.
	waiters []func()
}

// NewSignal returns an unfired signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// MakeSignal returns an unfired signal value for embedding into a larger
// struct, saving the separate allocation of NewSignal. Methods are on the
// pointer; embedders hand out &s.
func MakeSignal(e *Engine) Signal { return Signal{eng: e} }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire wakes all current and future waiters. Firing twice is a no-op.
// It may be called from event callbacks or from process context.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		s.eng.Schedule(0, w)
	}
}

// Rearm returns a fired signal to the unfired state so pooled owners
// (recycled flows, reused collective ops) can use one signal across many
// completions. The caller must guarantee no outstanding reference still
// expects the previous firing: re-arming while a stale holder could call
// Await or OnFire would silently re-block it. Rearm panics if waiters are
// currently parked — re-arming an unfired signal that processes are
// blocked on is always a bug.
func (s *Signal) Rearm() {
	if len(s.waiters) != 0 {
		panic("sim: Rearm on a signal with parked waiters")
	}
	s.fired = false
}

// OnFire registers fn to run when the signal fires: it is scheduled at
// the firing instant, interleaved in arrival order with parked process
// waiters. If the signal has already fired, fn runs synchronously — the
// continuation analogue of Await returning immediately.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		fn()
		return
	}
	s.waiters = append(s.waiters, fn)
}

// Barrier releases a batch of processes once a fixed number have arrived.
// It is reusable: after releasing a full batch it resets for the next one.
type Barrier struct {
	eng     *Engine
	n       int
	arrived []*Process
	rounds  int
}

// NewBarrier returns a barrier for groups of n processes. n must be >= 1.
func NewBarrier(e *Engine, n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("sim: barrier size %d < 1", n))
	}
	return &Barrier{eng: e, n: n}
}

// Rounds reports how many full batches have been released.
func (b *Barrier) Rounds() int { return b.rounds }

// Wait blocks the process until n processes (including this one) have
// arrived, then releases them all.
func (b *Barrier) Wait(p *Process) {
	if b.n == 1 {
		b.rounds++
		return
	}
	b.arrived = append(b.arrived, p)
	if len(b.arrived) < b.n {
		p.park()
		return
	}
	// Last arrival releases everyone else and continues.
	waiters := b.arrived[:len(b.arrived)-1]
	b.arrived = nil
	b.rounds++
	for _, w := range waiters {
		b.eng.Schedule(0, w.stepFn)
	}
}

// Resource is a counting semaphore with a FIFO wait queue.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	queue    []*Process
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource capacity %d < 1", capacity))
	}
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks until a unit is available, then claims it.
func (r *Resource) Acquire(p *Process) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.park()
	// Ownership was transferred by Release before waking us.
}

// Release returns a unit, waking the longest-waiting process if any.
// It may be called from any context.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without matching Acquire")
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		// The unit passes directly to the waiter; inUse stays constant.
		r.eng.Schedule(0, next.stepFn)
		return
	}
	r.inUse--
}

// Queue is an unbounded FIFO channel between processes: Put never blocks,
// Get blocks while empty. Continuation consumers use GetFunc.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	waiters []func()
	closed  bool
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{eng: e} }

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends an item and wakes one waiting getter, if any. It may be
// called from any context.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed: subsequent Gets on an empty queue return
// ok=false instead of blocking. Buffered items can still be drained.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	waiters := q.waiters
	q.waiters = nil
	for _, w := range waiters {
		q.eng.Schedule(0, w)
	}
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.eng.Schedule(0, w)
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. It returns ok=false once the queue is closed and drained.
func (q *Queue[T]) Get(p *Process) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.waiters = append(q.waiters, p.stepFn)
		p.park()
	}
	v = q.items[0]
	q.items = q.items[1:]
	// Another waiter may be runnable if more items remain.
	if len(q.items) > 0 {
		q.wakeOne()
	}
	return v, true
}

// GetFunc delivers the oldest item to fn without a process: synchronously
// when an item is buffered (or the queue is closed and drained), otherwise
// once a Put or Close wakes this getter. Like Get, a woken getter
// re-checks the queue, so mixed process/continuation consumers keep FIFO
// fairness.
func (q *Queue[T]) GetFunc(fn func(v T, ok bool)) {
	if len(q.items) == 0 {
		if q.closed {
			var zero T
			fn(zero, false)
			return
		}
		q.waiters = append(q.waiters, func() { q.GetFunc(fn) })
		return
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.items) > 0 {
		q.wakeOne()
	}
	fn(v, true)
}
