#!/bin/sh
# ci.sh — the repository's full verification gate.
#
# Tier-1 (ROADMAP.md) is `go build ./... && go test ./...`; this script
# adds vet and a race-detector pass, which is the real guard for the
# parallel scenario scheduler (single-flight profiler cache + worker
# pools). Run from the repository root:
#
#   ./scripts/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> ci.sh: all checks passed"
