#!/bin/sh
# ci.sh — the repository's full verification gate.
#
# Tier-1 (ROADMAP.md) is `go build ./... && go test ./...`; this script
# adds vet, the stashlint static determinism/concurrency gate, an
# explicit build of every runnable (CLIs, stashd, each example), the
# documentation checks (docs/API.md examples replayed against a live
# server, markdown cross-references resolved), and a race-detector
# pass — the real guard for the parallel scenario scheduler and the
# stashd concurrency gate. Run from the repository root:
#
#   ./scripts/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> stashlint ./... (static determinism & concurrency analyzers)"
go run ./cmd/stashlint -list
go run ./cmd/stashlint -timing ./...

echo "==> stashlint -staleallows ./... (every //lint:allow must still suppress a finding)"
go run ./cmd/stashlint -staleallows ./...

echo "==> go build ./..."
go build ./...

echo "==> build all commands and examples"
for d in ./cmd/* ./examples/*; do
  [ -d "$d" ] || continue
  echo "    go build $d"
  go build -o /dev/null "$d"
done

echo "==> documentation checks (API examples + metrics reference + markdown links)"
go test ./internal/api -run 'TestAPIDocExamplesVerified|TestMetricsDocumented'
go test . -run 'TestDocs'

echo "==> documentation capture regenerator (verify mode, throwaway dir)"
STASHD_CAPTURE="$(mktemp -d)" go test ./internal/api -run 'TestCaptureDocExamples'

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

# The cluster layer is the newest concurrency surface (gossip, steal
# leases, remote single-flight); run it under the race detector with
# caching disabled so every CI run actually re-executes it.
echo "==> go test -race -count=1 ./internal/cluster"
go test -race -count=1 ./internal/cluster

echo "==> clustersmoke (3 loopback replicas: byte-identity + cluster-wide single-flight)"
go run ./cmd/clustersmoke

echo "==> stash -selfcheck (cross-layer invariant audit)"
go run ./cmd/stash -selfcheck

# Perf-trajectory checks: diff the two most recent BENCH_*.json
# snapshots when at least two exist.
#
# The micro benches (internal/sim, internal/simnet, internal/collective,
# internal/trace — the blame-attribution pass) are ENFORCED: their
# steady-state min-of-N is stable across runs on one machine
# (nanosecond-scale operations, many iterations per sample), so a >25%
# regression is a real change, not noise, and fails the gate.
#
# The suite benches (package stash: SuiteSerial/SuiteParallel and the
# experiment benches) stay ADVISORY: a suite sample is one -benchtime=1x
# shot of a multi-second figure simulation, so allocator, GC and host
# scheduling variance can move it tens of percent between snapshots taken
# on different machines or load conditions. Their deltas (and the derived
# parallel_speedup field) land in the CI log for eyeballing instead.
set -- $(ls BENCH_*.json 2>/dev/null | sort)
if [ "$#" -ge 2 ]; then
  shift $(($# - 2))
  echo "==> benchcmp $1 $2 (micro benches, enforcing)"
  go run ./cmd/benchcmp -threshold 25 -match '^stash/internal/(sim|simnet|collective|trace)\.' "$1" "$2"
  echo "==> benchcmp $1 $2 (suite benches, advisory)"
  go run ./cmd/benchcmp -threshold -1 -match '^stash\.' "$1" "$2" || echo "    benchcmp: advisory check failed (non-blocking)"
fi

echo "==> ci.sh: all checks passed"
