#!/bin/sh
# ci.sh — the repository's full verification gate.
#
# Tier-1 (ROADMAP.md) is `go build ./... && go test ./...`; this script
# adds vet, the stashlint static determinism/concurrency gate, an
# explicit build of every runnable (CLIs, stashd, each example), the
# documentation checks (docs/API.md examples replayed against a live
# server, markdown cross-references resolved), and a race-detector
# pass — the real guard for the parallel scenario scheduler and the
# stashd concurrency gate. Run from the repository root:
#
#   ./scripts/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> stashlint ./... (static determinism & concurrency analyzers)"
go run ./cmd/stashlint -list
go run ./cmd/stashlint ./...

echo "==> go build ./..."
go build ./...

echo "==> build all commands and examples"
for d in ./cmd/* ./examples/*; do
  [ -d "$d" ] || continue
  echo "    go build $d"
  go build -o /dev/null "$d"
done

echo "==> documentation checks (API examples + markdown links)"
go test ./internal/api -run 'TestAPIDocExamplesVerified'
go test . -run 'TestDocs'

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> stash -selfcheck (cross-layer invariant audit)"
go run ./cmd/stash -selfcheck

# Advisory perf-trajectory check: diff the two most recent BENCH_*.json
# snapshots when at least two exist. Never fails the gate — benchmark
# noise across machines is not a correctness signal — but the delta
# table lands in the CI log for eyeballing.
set -- $(ls BENCH_*.json 2>/dev/null | sort)
if [ "$#" -ge 2 ]; then
  shift $(($# - 2))
  echo "==> benchcmp $1 $2 (advisory)"
  go run ./cmd/benchcmp -threshold -1 "$1" "$2" || echo "    benchcmp: advisory check failed (non-blocking)"
fi

echo "==> ci.sh: all checks passed"
