#!/bin/sh
# bench.sh — the repository's perf-trajectory snapshot.
#
# Runs the suite-level benchmarks (root Suite*/experiment benches, the
# collective ring benches, and the simulation-engine/simnet microbenches)
# with a fixed -benchtime and -count, then converts `go test -bench`
# output into a machine-readable BENCH_<date>.json so successive commits
# accumulate comparable data points.
#
# Each benchmark's first sample is flagged "warmup": true — it absorbs
# cold caches, first-touch page faults and JIT-ish one-time costs (the
# seed data shows first samples up to 20x the steady state), so
# consumers (cmd/benchcmp) compare steady-state samples only. -benchmem
# is always on; bytes_per_op / allocs_per_op land in the JSON.
#
# Usage, from the repository root:
#
#   ./scripts/bench.sh            # writes BENCH_YYYYMMDD.json
#   OUT=custom.json ./scripts/bench.sh
#
# If the default output file already exists (a second run on the same
# day), a _r2/_r3/... revision suffix is appended instead of
# overwriting, so earlier points in the trajectory are never lost.
#
# Knobs (fixed defaults keep points comparable across runs):
#
#   BENCHTIME       suite-bench budget     (default 1x: deterministic
#                   single-iteration timing — the suite benches simulate
#                   a full figure per iteration, so 1x is already
#                   seconds)
#   MICRO_BENCHTIME micro-bench budget     (default 0.5s: the engine/
#                   collective/simnet micro benches cost nanoseconds to
#                   microseconds per op, so a single iteration would
#                   measure constant setup cost, not the operation —
#                   these need many iterations for a steady-state ns/op)
#   COUNT           repetitions per benchmark (default 3; the JSON keeps
#                   every sample so consumers can take min/median of the
#                   non-warmup ones)
#   FILTER          -bench regexp          (default Suite|RingAllReduce|
#                   EventDispatch|ProcessSwitch|TaskSwitch|Barrier|
#                   FlowLifecycle|BlameAttribute)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
MICRO_BENCHTIME="${MICRO_BENCHTIME:-0.5s}"
COUNT="${COUNT:-3}"
FILTER="${FILTER:-SuiteSerial|SuiteParallel|RingAllReduce|EventDispatch|ProcessSwitch|TaskSwitch|Barrier|FlowLifecycle|BlameAttribute|TableRender}"
# The effective scheduler width: parallel_speedup (SuiteSerial /
# SuiteParallel) is only meaningful when the parallel suite actually had
# more than one P to run on, so single-P hosts record gomaxprocs and
# omit the ratio instead of emitting a misleading ~1.0x.
GOMAXPROCS_EFF="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"
DATE="$(date -u +%Y%m%d)"
if [ -z "${OUT:-}" ]; then
    OUT="BENCH_${DATE}.json"
    r=2
    while [ -e "$OUT" ]; do
        OUT="BENCH_${DATE}_r${r}.json"
        r=$((r + 1))
    done
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench '$FILTER' -benchtime=$BENCHTIME -count=$COUNT (suite)"
go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
    . | tee "$RAW"
echo "==> go test -bench '$FILTER' -benchtime=$MICRO_BENCHTIME -count=$COUNT (micro)"
go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$MICRO_BENCHTIME" -count "$COUNT" \
    ./internal/collective ./internal/report ./internal/sim ./internal/simnet ./internal/trace | tee -a "$RAW"

# Convert the textual benchmark lines into JSON. A line looks like
#   BenchmarkSuiteSerial-8   1   123456789 ns/op   456 B/op   7 allocs/op
# Fields beyond ns/op are optional and preserved when present. The first
# sample of each benchmark is marked as warmup.
awk -v date="$DATE" -v benchtime="$BENCHTIME" -v microbenchtime="$MICRO_BENCHTIME" -v count="$COUNT" -v gomaxprocs="$GOMAXPROCS_EFF" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^pkg:/    { pkg = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    extra = ""
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "B/op") unit = "bytes_per_op"
        gsub(/\//, "_per_", unit)
        extra = extra sprintf(", \"%s\": %s", unit, $i)
    }
    key = pkg "/" name
    if (!(key in seen)) { seen[key] = 1; extra = extra ", \"warmup\": true" }
    else if (pkg == "stash") {
        # Steady-state suite minima feed the derived parallel_speedup
        # field (SuiteSerial / SuiteParallel ns), the tentpole headline
        # metric benchcmp tracks across snapshots.
        if (name == "BenchmarkSuiteSerial" && (!serialMin || $3 + 0 < serialMin)) serialMin = $3 + 0
        if (name == "BenchmarkSuiteParallel" && (!parallelMin || $3 + 0 < parallelMin)) parallelMin = $3 + 0
    }
    line = sprintf("    {\"name\": \"%s\", \"package\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}",
                   name, pkg, $2, $3, extra)
    lines[n++] = line
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"micro_benchtime\": \"%s\",\n", microbenchtime
    printf "  \"count\": %s,\n", count
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    # On a single-P host SuiteParallel degenerates to serial execution
    # and the ratio reads ~1.0x — noise, not a speedup — so it is
    # omitted; benchcmp reads gomaxprocs and skips the diff with a note.
    if (serialMin && parallelMin && gomaxprocs + 0 >= 2)
        printf "  \"parallel_speedup\": %.4f,\n", serialMin / parallelMin
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "==> wrote $OUT ($(grep -c '"name"' "$OUT") samples)"
