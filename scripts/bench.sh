#!/bin/sh
# bench.sh — the repository's perf-trajectory snapshot.
#
# Runs the suite-level benchmarks (root Suite*/experiment benches, the
# collective ring benches, and the simulation-engine/simnet microbenches)
# with a fixed -benchtime and -count, then converts `go test -bench`
# output into a machine-readable BENCH_<date>.json so successive commits
# accumulate comparable data points.
#
# Usage, from the repository root:
#
#   ./scripts/bench.sh            # writes BENCH_YYYYMMDD.json
#   OUT=custom.json ./scripts/bench.sh
#
# Knobs (fixed defaults keep points comparable across runs):
#
#   BENCHTIME  per-benchmark budget         (default 1x: deterministic
#              single-iteration timing — the suite benches simulate a
#              full figure per iteration, so 1x is already seconds)
#   COUNT      repetitions per benchmark    (default 3; the JSON keeps
#              every sample so consumers can take min/median)
#   FILTER     -bench regexp                (default Suite|RingAllReduce|
#              EventDispatch|ProcessSwitch|Barrier|FlowLifecycle)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
COUNT="${COUNT:-3}"
FILTER="${FILTER:-SuiteSerial|SuiteParallel|RingAllReduce|EventDispatch|ProcessSwitch|Barrier|FlowLifecycle}"
DATE="$(date -u +%Y%m%d)"
OUT="${OUT:-BENCH_${DATE}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench '$FILTER' -benchtime=$BENCHTIME -count=$COUNT"
go test -run '^$' -bench "$FILTER" -benchtime "$BENCHTIME" -count "$COUNT" \
    . ./internal/collective ./internal/sim ./internal/simnet | tee "$RAW"

# Convert the textual benchmark lines into JSON. A line looks like
#   BenchmarkSuiteSerial-8   1   123456789 ns/op   456 B/op   7 allocs/op
# Fields beyond ns/op are optional and preserved when present.
awk -v date="$DATE" -v benchtime="$BENCHTIME" -v count="$COUNT" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^pkg:/    { pkg = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    extra = ""
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        extra = extra sprintf(", \"%s\": %s", unit, $i)
    }
    line = sprintf("    {\"name\": \"%s\", \"package\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}",
                   name, pkg, $2, $3, extra)
    lines[n++] = line
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"count\": %s,\n", count
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "==> wrote $OUT ($(grep -c '"name"' "$OUT") samples)"
