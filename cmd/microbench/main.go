// Command microbench runs the paper's §VI micro characterization: it
// sweeps synthetic ResNet-N and VGG-N variants (optionally without batch
// norm or residual connections) and reports how layer count and gradient
// volume drive interconnect and network stalls (Fig 16).
//
// Usage:
//
//	microbench [-iters N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"stash/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("microbench", flag.ContinueOnError)
	iters := fs.Int("iters", experiments.DefaultConfig().Iterations, "profiling iterations per scenario")
	seed := fs.Int64("seed", 1, "provisioning seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tables, err := experiments.Fig16(experiments.Config{Iterations: *iters, Seed: *seed})
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	return nil
}
