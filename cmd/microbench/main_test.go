package main

import "testing"

func TestMicrobench(t *testing.T) {
	if testing.Short() {
		t.Skip("full micro sweep in -short mode")
	}
	if err := run([]string{"-iters", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}
