package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-iters", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "nope"},
		{"-instance", "m5.large"},
		{"-batch", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunCleanSlice(t *testing.T) {
	if err := run([]string{"-iters", "4", "-instance", "p3.8xlarge", "-clean-slice"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunOOMSurfaces(t *testing.T) {
	err := run([]string{"-model", "bert-large", "-batch", "64", "-iters", "4"})
	if err == nil || !strings.Contains(err.Error(), "GB") {
		t.Errorf("expected OOM error, got %v", err)
	}
}

func TestLookupModel(t *testing.T) {
	for _, name := range []string{
		"resnet18", "resnet101", "vgg19", "densenet169", "bert-large",
		"bert-base", "gpt2-small", "resnext50", "wide_resnet50", "alexnet",
	} {
		if _, err := lookupModel(name); err != nil {
			t.Errorf("lookupModel(%s): %v", name, err)
		}
	}
	for _, name := range []string{"resnet7", "vggX", "nothing", "densenet7"} {
		if _, err := lookupModel(name); err == nil {
			t.Errorf("lookupModel(%s) should fail", name)
		}
	}
}

func TestRunRecommend(t *testing.T) {
	if err := run([]string{"-recommend", "-iters", "3", "-deadline", "40m"}); err != nil {
		t.Fatalf("run -recommend: %v", err)
	}
}

func TestRunRecommendInfeasible(t *testing.T) {
	if err := run([]string{"-recommend", "-iters", "3", "-budget", "0.001"}); err == nil {
		t.Error("impossible budget should surface an error")
	}
}
