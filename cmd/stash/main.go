// Command stash profiles one DDL workload on one simulated cloud
// instance type, reporting the four execution stalls the paper defines
// (interconnect, network, CPU/prep, disk/fetch) plus an epoch time and
// cost estimate.
//
// Usage:
//
//	stash -model resnet18 -instance p3.16xlarge [-batch 32] [-nodes 2] [-iters N]
//	stash -blame [-straggler RANK [-straggler-scale F]] -model M -instance I
//	stash -selfcheck [-seed N] [-parallel N]
//
// -blame runs frontier blame attribution instead of the stall
// pipeline: one traced training run where, for every all-reduce
// barrier, the last-arriving worker is charged the comm-wait it caused
// the others — naming the rank responsible for each stall rather than
// just measuring it. -straggler injects a synthetic slow rank
// (-straggler-scale its compute slowdown, default 1.5) to calibrate
// the attribution; the injected rank must come out on top.
//
// -selfcheck runs the cross-layer invariant auditor (internal/audit)
// instead of profiling: physical time orderings, scheduler-counter
// conservation, registry determinism and blame-attribution
// conservation, exiting non-zero on any violation. scripts/ci.sh runs
// it as a gate.
//
// Models: the Table II zoo (alexnet, mobilenet_v2, squeezenet1_1,
// shufflenet_v2, resnet18, resnet50, vgg11, bert-large) plus resnet<N>,
// vgg<N> and densenet<N> variants, resnext50, wide_resnet50, bert-base
// and gpt2-small.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"stash/internal/audit"
	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stash:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stash", flag.ContinueOnError)
	modelName := fs.String("model", "resnet18", "model to profile")
	batch := fs.Int("batch", 32, "per-GPU batch size")
	instance := fs.String("instance", "p3.16xlarge", "AWS instance type")
	nodes := fs.Int("nodes", 2, "node count for the network-stall step (0 to skip)")
	iters := fs.Int("iters", core.DefaultIterations, "profiling iterations per step")
	clean := fs.Bool("clean-slice", false, "assume a whole NVLink crossbar (lucky p3.8xlarge tenant)")
	recommend := fs.Bool("recommend", false, "rank every catalog configuration instead of profiling one")
	blame := fs.Bool("blame", false, "run frontier blame attribution instead of the stall pipeline")
	straggler := fs.Int("straggler", -1, "with -blame: inject a synthetic straggler at this rank (-1 = none)")
	stragglerScale := fs.Float64("straggler-scale", core.DefaultStragglerScale, "with -blame -straggler: the straggler's compute slowdown (> 1)")
	deadline := fs.Duration("deadline", 0, "with -recommend: max epoch time")
	budget := fs.Float64("budget", 0, "with -recommend: max epoch cost in USD")
	parallel := fs.Int("parallel", 0, "worker-pool size for -recommend and -selfcheck (0 or negative = GOMAXPROCS, 1 = serial)")
	selfcheck := fs.Bool("selfcheck", false, "run the cross-layer invariant audit and exit (non-zero on violations)")
	seed := fs.Int64("seed", 1, "with -selfcheck: provisioning seed the audit runs at")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selfcheck {
		// -iters keeps its own profiling default; the audit only adopts
		// it when set explicitly (invariants hold at any window, so the
		// audit's smaller default is just speed).
		auditIters := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "iters" {
				auditIters = *iters
			}
		})
		return runSelfcheck(auditIters, *seed, *parallel)
	}

	model, err := lookupModel(*modelName)
	if err != nil {
		return err
	}
	it, err := cloud.ByName(*instance)
	if err != nil {
		return err
	}
	job, err := workload.NewJob(model, *batch)
	if err != nil {
		return err
	}

	opts := []core.Option{core.WithIterations(*iters), core.WithParallelism(*parallel)}
	if *clean {
		opts = append(opts, core.WithSlicePolicy(cloud.SliceClean))
	}
	p := core.New(opts...)

	if *recommend {
		return runRecommend(p, job, core.Constraints{
			MaxEpochTime:    *deadline,
			MaxCostPerEpoch: *budget,
		})
	}

	if *blame {
		// -nodes keeps its network-stall default of 2; a blame run stays
		// on one instance unless the split is requested explicitly.
		blameNodes := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "nodes" {
				blameNodes = *nodes
			}
		})
		return runBlame(p, job, it, blameNodes, *straggler, *stragglerScale)
	}

	fmt.Printf("profiling %s (batch %d/GPU, %.1fM gradients, %d sync points) on %s (%dx %s)\n\n",
		model.Name, *batch, float64(model.TotalParams())/1e6, model.NumParamLayers(),
		it.Name, it.NGPUs, it.GPU.Name)

	r, err := p.Profile(job, it)
	if err != nil {
		return err
	}
	fmt.Print(r)

	// Profile already reports the 2-node network stall; only re-measure
	// for a different split.
	if *nodes >= 2 && *nodes != 2 && it.NGPUs%*nodes == 0 {
		nw, err := p.NetworkStall(job, it, *nodes)
		if err != nil {
			return err
		}
		fmt.Printf("  %v\n", nw)
	}
	fmt.Printf("  GPU memory utilization: %.1f%%\n", core.MemoryUtilization(job, it))
	return nil
}

// runSelfcheck runs the full invariant audit and reports the outcome;
// any violation is an error, which main turns into a non-zero exit.
func runSelfcheck(iters int, seed int64, parallel int) error {
	res, err := audit.Run(context.Background(), audit.Options{
		Iterations:  iters,
		Seed:        seed,
		Parallelism: parallel,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if !res.Ok() {
		return fmt.Errorf("selfcheck: %d invariant violations", len(res.Violations))
	}
	return nil
}

// runBlame runs one traced training and prints the ranked frontier
// blame table; the output is byte-identical to the "rendered" field of
// stashd's POST /v1/blame for the same workload.
func runBlame(p *core.Profiler, job workload.Job, it cloud.InstanceType, nodes, straggler int, scale float64) error {
	opt := core.BlameOptions{Nodes: nodes, StragglerRank: straggler}
	if straggler >= 0 {
		if scale <= 1 {
			return fmt.Errorf("-straggler-scale must be > 1, got %v", scale)
		}
		opt.StragglerScale = scale
	}
	rep, err := p.Blame(job, it, opt)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// runRecommend ranks every catalog configuration for the job.
func runRecommend(p *core.Profiler, job workload.Job, cons core.Constraints) error {
	rec, err := p.Recommend(job, cons)
	if err != nil {
		return err
	}
	fmt.Printf("%s (batch %d/GPU): %d feasible configurations\n\n", job.Model.Name, job.BatchPerGPU, len(rec.Candidates))
	for i, c := range rec.Candidates {
		marker := " "
		if i == rec.Fastest {
			marker = "*" // fastest
		}
		notes := ""
		if len(c.Notes) > 0 {
			notes = " (" + strings.Join(c.Notes, "; ") + ")"
		}
		fmt.Printf("%s %2d. %dx %-13s $%6.2f/epoch  %-10v%s\n",
			marker, i+1, c.Nodes, c.Instance, c.Estimate.Cost,
			c.Estimate.Time.Round(time.Second), notes)
	}
	if len(rec.Rejected) > 0 {
		fmt.Println("\nrejected:")
		labels := make([]string, 0, len(rec.Rejected))
		for lbl := range rec.Rejected {
			labels = append(labels, lbl)
		}
		sort.Strings(labels)
		for _, lbl := range labels {
			fmt.Printf("  %-16s %s\n", lbl, rec.Rejected[lbl])
		}
	}
	fmt.Printf("\n%s\n", rec.ModelAdvice)
	return nil
}

// lookupModel resolves zoo names plus parametric resnet<N>/vgg<N>;
// the shared resolver also backs stashd's /v1 endpoints.
func lookupModel(name string) (*dnn.Model, error) {
	return dnn.Resolve(name)
}
