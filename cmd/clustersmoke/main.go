// Command clustersmoke is the CI smoke test for distributed stashd: it
// boots a 3-replica cluster on loopback TCP (each replica a full
// api.Server with its peer protocol on its own listener, exactly the
// two-listener topology cmd/stashd runs), submits a small /v2/jobs grid
// sweep to one replica, and proves the two distribution guarantees end
// to end over the real wire:
//
//   - byte identity: the merged sweep artifact equals a standalone
//     single-node run of the same sweep, byte for byte (checked with
//     the audit layer's merge-identity determinism check);
//   - cluster-wide single-flight: summed over every replica's /metrics,
//     stashd_scenarios_simulated_total{pool="experiments"} does not
//     exceed the number of unique scenarios in the sweep (taken from
//     the standalone reference, which by local single-flight simulates
//     each unique scenario exactly once).
//
// Exit status 0 when both hold, 1 otherwise. Run by scripts/ci.sh.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"stash/internal/api"
	"stash/internal/audit"
	"stash/internal/cluster"
)

// sweepBody is the smoke sweep: three experiment cells is the smallest
// grid that exercises splitting, stealing eligibility, and the
// index-ordered merge.
const sweepBody = `{"type":"experiments","experiments":{"ids":["fig4","fig5","fig6"]}}`

// expIters/expSeed keep the smoke fast and every replica identical (the
// cluster contract requires matching -exp-iters/-seed on all replicas).
const (
	expIters = 2
	expSeed  = 7
)

func main() {
	if err := run(context.Background(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clustersmoke:", err)
		os.Exit(1)
	}
}

// replica is one booted cluster member: its operator API and peer
// protocol, each on its own loopback listener.
type replica struct {
	srv  *api.Server
	node *cluster.Node
	hs   *http.Server // operator API
	chs  *http.Server // peer protocol
	url  string
}

// serveOn starts h on a fresh loopback listener and returns the server
// and its base URL.
func serveOn(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return hs, "http://" + ln.Addr().String(), nil
}

func run(ctx context.Context, out io.Writer) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()

	// Peer listeners first: every replica must know the full advertise
	// list before its node exists.
	const n = 3
	peerLn := make([]net.Listener, n)
	peerURL := make([]string, n)
	for i := range peerLn {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		peerLn[i] = ln
		peerURL[i] = "http://" + ln.Addr().String()
	}

	replicas := make([]*replica, n)
	for i := range replicas {
		node, err := cluster.New(cluster.Config{Self: peerURL[i], Peers: peerURL})
		if err != nil {
			return err
		}
		srv := api.New(
			api.WithExperimentIterations(expIters),
			api.WithSeed(expSeed),
			api.WithCluster(node),
		)
		chs := &http.Server{Handler: node.Handler()}
		go chs.Serve(peerLn[i])
		hs, url, err := serveOn(srv.Handler())
		if err != nil {
			return err
		}
		replicas[i] = &replica{srv: srv, node: node, hs: hs, chs: chs, url: url}
	}
	defer func() {
		for _, r := range replicas {
			r.node.Stop()
			r.chs.Close()
			r.hs.Close()
		}
	}()
	fmt.Fprintf(out, "clustersmoke: 3 replicas up (%s, %s, %s)\n", peerURL[0], peerURL[1], peerURL[2])

	// Standalone reference: same build, same iterations and seed, no
	// cluster — the byte-identity and unique-scenario oracle.
	ref := api.New(api.WithExperimentIterations(expIters), api.WithSeed(expSeed))
	refHS, refURL, err := serveOn(ref.Handler())
	if err != nil {
		return err
	}
	defer refHS.Close()

	refBody, err := runSweep(ctx, refURL)
	if err != nil {
		return fmt.Errorf("single-node sweep: %w", err)
	}
	unique, err := scrapeSimulated(ctx, refURL)
	if err != nil {
		return err
	}
	if unique == 0 {
		return fmt.Errorf("reference run simulated 0 scenarios; smoke sweep is vacuous")
	}

	merged, err := runSweep(ctx, replicas[0].url)
	if err != nil {
		return fmt.Errorf("cluster sweep: %w", err)
	}

	if res := audit.CheckMergeIdentity("clustersmoke", refBody, merged); !res.Ok() {
		return fmt.Errorf("merged sweep is not byte-identical to single-node:\n%s", res.String())
	}
	fmt.Fprintf(out, "clustersmoke: merged artifact byte-identical to single-node (%d bytes)\n", len(merged))

	total := 0
	for _, r := range replicas {
		sim, err := scrapeSimulated(ctx, r.url)
		if err != nil {
			return err
		}
		total += sim
	}
	if total > unique {
		return fmt.Errorf("cluster simulated %d scenarios for %d unique — single-flight violated", total, unique)
	}
	fmt.Fprintf(out, "clustersmoke: cluster simulated %d scenarios for %d unique (single-flight holds)\n", total, unique)
	return nil
}

// runSweep submits the smoke sweep as a v2 job, waits for the terminal
// state, and returns the exact result bytes.
func runSweep(ctx context.Context, base string) ([]byte, error) {
	status, body, err := do(ctx, http.MethodPost, base+"/v2/jobs", strings.NewReader(sweepBody))
	if err != nil {
		return nil, err
	}
	if status != http.StatusAccepted {
		return nil, fmt.Errorf("submit = %d: %s", status, body)
	}
	var js api.JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		return nil, fmt.Errorf("submit response: %w", err)
	}
	for {
		status, body, err = do(ctx, http.MethodGet, base+"/v2/jobs/"+js.ID, nil)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("job status = %d: %s", status, body)
		}
		var cur api.JobStatus
		if err := json.Unmarshal(body, &cur); err != nil {
			return nil, fmt.Errorf("job status: %w", err)
		}
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || cur.State == "cancelled" {
			return nil, fmt.Errorf("job ended %s: %s", cur.State, body)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("sweep did not finish: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
	status, body, err = do(ctx, http.MethodGet, base+"/v2/jobs/"+js.ID+"/result", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("job result = %d: %s", status, body)
	}
	return body, nil
}

// scrapeSimulated reads stashd_scenarios_simulated_total for the
// experiments pool from a replica's /metrics.
func scrapeSimulated(ctx context.Context, base string) (int, error) {
	const family = `stashd_scenarios_simulated_total{pool="experiments"} `
	_, body, err := do(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, family); ok {
			return strconv.Atoi(strings.TrimSpace(v))
		}
	}
	return 0, fmt.Errorf("%s/metrics has no %q sample", base, strings.TrimSpace(family))
}

// do issues one HTTP request and returns status and body.
func do(ctx context.Context, method, url string, r io.Reader) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, r)
	if err != nil {
		return 0, nil, err
	}
	if r != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
