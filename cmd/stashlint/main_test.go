package main

import (
	"bytes"
	"strings"
	"testing"

	"stash/internal/lint"
)

// TestListSuite pins the -list output: ci.sh prints it into the gate
// log so every run records the enforced version and roster.
func TestListSuite(t *testing.T) {
	out := listSuite()
	if !strings.Contains(out, "stashlint "+lint.Version) {
		t.Errorf("missing version line in %q", out)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("roster missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

func TestRunListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "wallclock") {
		t.Errorf("-list output missing analyzers: %q", out.String())
	}
}

// TestRunCleanPackage runs the real multichecker path over a small
// violation-free package; the whole-tree gate lives in ci.sh and in
// internal/lint's TestRepoIsClean.
func TestRunCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real packages; run without -short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"./internal/hw"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d on clean package, stderr: %s", code, errw.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d on bad pattern, want 2 (stderr: %s)", code, errw.String())
	}
}

// TestRunTimingFlag: -timing must print one wall-time line per analyzer
// after a clean run, in roster order.
func TestRunTimingFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real packages; run without -short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-timing", "./internal/hw"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d on clean package, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "stashlint timing over 1 packages") {
		t.Errorf("missing timing header:\n%s", out.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("timing report missing analyzer %q:\n%s", a.Name, out.String())
		}
	}
}

// TestRunStaleAllows: the tree's own directives must all be live — this
// is the same invariant ci.sh gates on, scoped to one package here for
// speed; the module-wide pass runs in CI.
func TestRunStaleAllows(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real packages; run without -short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-staleallows", "./internal/core"}, &out, &errw); code != 0 {
		t.Fatalf("-staleallows exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "are live") {
		t.Errorf("missing liveness summary:\n%s", out.String())
	}
}
