// Command stashlint is the repository's static determinism and
// concurrency gate: a multichecker over the internal/lint analyzer
// suite, run by scripts/ci.sh between go vet and the build.
//
// Usage:
//
//	stashlint [-list] [pattern ...]
//
// Patterns are module-root-relative package patterns ("./...",
// "./internal/core", "./internal/..."); the default is "./...".
// -list prints the suite version and the analyzer roster (what the CI
// gate log pins) and exits.
//
// Exit status: 0 when the tree is clean, 1 when any analyzer reports a
// finding, 2 on usage or load errors.
//
// Findings are suppressed per site with
//
//	//lint:allow <analyzer> <reason>
//
// on or directly above the flagged line; the reason is mandatory and a
// bare directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"stash/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("stashlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "print suite version and analyzers, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprint(out, listSuite())
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "stashlint:", err)
		return 2
	}
	root, modPath, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(errw, "stashlint:", err)
		return 2
	}

	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(errw, "stashlint:", err)
		return 2
	}

	count := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.All()) {
			pos := d.Pos
			if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			fmt.Fprintf(errw, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(errw, "stashlint: %d finding(s) in %d packages\n", count, len(pkgs))
		return 1
	}
	return 0
}

// listSuite renders the version/roster block ci.sh prints into the
// gate log so every CI run records exactly what was enforced.
func listSuite() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stashlint %s — static determinism & concurrency analyzers\n", lint.Version)
	for _, a := range lint.All() {
		fmt.Fprintf(&b, "  %-10s %s\n", a.Name, firstClause(a.Doc))
	}
	return b.String()
}

// firstClause trims an analyzer doc to its headline for the roster.
func firstClause(doc string) string {
	if i := strings.IndexByte(doc, ':'); i > 0 {
		return doc[:i]
	}
	return doc
}
