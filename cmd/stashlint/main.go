// Command stashlint is the repository's static determinism and
// concurrency gate: a multichecker over the internal/lint analyzer
// suite, run by scripts/ci.sh between go vet and the build.
//
// Usage:
//
//	stashlint [-list] [-staleallows] [-timing] [pattern ...]
//
// Patterns are module-root-relative package patterns ("./...",
// "./internal/core", "./internal/..."); the default is "./...".
// -list prints the suite version and the analyzer roster (what the CI
// gate log pins) and exits. -staleallows runs the suite and reports
// every //lint:allow directive that no longer suppresses a finding,
// so exemptions cannot outlive the code they excused. -timing prints
// per-analyzer wall time, summed across packages, after the findings.
//
// The analyzers share one interprocedural program (module-wide call
// graph and function summaries); package analysis then fans out across
// GOMAXPROCS workers, with findings reported in deterministic package
// order regardless of completion order.
//
// Exit status: 0 when the tree is clean, 1 when any analyzer reports a
// finding (or, under -staleallows, any directive is stale), 2 on usage
// or load errors.
//
// Findings are suppressed per site with
//
//	//lint:allow <analyzer> <reason>
//
// on or directly above the flagged line; the reason is mandatory and a
// bare directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("stashlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "print suite version and analyzers, then exit")
	staleAllows := fs.Bool("staleallows", false, "report //lint:allow directives that no longer suppress a finding")
	timing := fs.Bool("timing", false, "print per-analyzer wall time summed across packages")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprint(out, listSuite())
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "stashlint:", err)
		return 2
	}
	root, modPath, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(errw, "stashlint:", err)
		return 2
	}

	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(errw, "stashlint:", err)
		return 2
	}

	if *staleAllows {
		stale := lint.StaleAllows(pkgs, lint.All())
		for _, d := range stale {
			fmt.Fprintf(errw, "%s: %s: %s\n", relPos(wd, d.Pos), d.Analyzer, d.Message)
		}
		if len(stale) > 0 {
			fmt.Fprintf(errw, "stashlint: %d stale allow directive(s) in %d packages\n", len(stale), len(pkgs))
			return 1
		}
		fmt.Fprintf(out, "stashlint: all //lint:allow directives in %d packages are live\n", len(pkgs))
		return 0
	}

	analyzers := lint.All()
	results, elapsed := analyze(pkgs, analyzers)

	count := 0
	for _, diags := range results {
		for _, d := range diags {
			fmt.Fprintf(errw, "%s: %s: %s\n", relPos(wd, d.Pos), d.Analyzer, d.Message)
			count++
		}
	}
	if *timing {
		fmt.Fprintf(out, "stashlint timing over %d packages (wall time per analyzer, summed):\n", len(pkgs))
		for i, a := range analyzers {
			fmt.Fprintf(out, "  %-10s %s\n", a.Name, elapsed[i].Round(10*time.Microsecond))
		}
	}
	if count > 0 {
		fmt.Fprintf(errw, "stashlint: %d finding(s) in %d packages\n", count, len(pkgs))
		return 1
	}
	return 0
}

// analyze builds one interprocedural program over all packages, then
// fans package analysis out across GOMAXPROCS workers. Findings come
// back indexed by package so output order matches load order, and each
// analyzer's wall time is accumulated across workers.
func analyze(pkgs []*lint.Package, analyzers []*lint.Analyzer) ([][]lint.Diagnostic, []time.Duration) {
	prog := lint.BuildProgram(pkgs)
	results := make([][]lint.Diagnostic, len(pkgs))
	nanos := make([]int64, len(analyzers))

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *lint.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = lint.RunPackageObserved(prog, pkg, analyzers, func(j int, run func()) {
				start := time.Now() //lint:allow wallclock measuring analyzer wall time for the -timing report, not simulation state
				run()
				atomic.AddInt64(&nanos[j], int64(time.Since(start))) //lint:allow wallclock measuring analyzer wall time for the -timing report, not simulation state
			})
		}(i, pkg)
	}
	wg.Wait()

	elapsed := make([]time.Duration, len(analyzers))
	for j := range nanos {
		elapsed[j] = time.Duration(nanos[j])
	}
	return results, elapsed
}

// relPos rewrites an absolute diagnostic position relative to wd when
// it lies under it, keeping gate logs readable.
func relPos(wd string, pos token.Position) string {
	if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}

// listSuite renders the version/roster block ci.sh prints into the
// gate log so every CI run records exactly what was enforced.
func listSuite() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stashlint %s — static determinism & concurrency analyzers\n", lint.Version)
	for _, a := range lint.All() {
		fmt.Fprintf(&b, "  %-10s %s\n", a.Name, firstClause(a.Doc))
	}
	return b.String()
}

// firstClause trims an analyzer doc to its headline for the roster.
func firstClause(doc string) string {
	if i := strings.IndexByte(doc, ':'); i > 0 {
		return doc[:i]
	}
	return doc
}
