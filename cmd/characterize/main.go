// Command characterize regenerates the paper's evaluation artifacts
// (Tables I-II, Figs 4-16 and the in-text case studies) on the simulated
// cloud.
//
// Usage:
//
//	characterize [-run id[,id...]] [-iters N] [-seed S] [-parallel N] [-csv] [-list] [-v]
//
// Without -run it executes every experiment in paper order. Experiments
// run concurrently on a worker pool (bounded by -parallel, default
// GOMAXPROCS) sharing one memoized profiler; output is printed in paper
// order and is byte-identical to a -parallel 1 run.
//
// -audit runs the cross-layer invariant auditor over the selected
// experiments (determinism family) at the run's iterations, seed and
// parallelism, instead of printing tables; it exits non-zero on any
// violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stash/internal/audit"
	"stash/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	ids := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	iters := fs.Int("iters", experiments.DefaultConfig().Iterations, "profiling iterations per scenario")
	seed := fs.Int64("seed", 1, "provisioning seed")
	parallel := fs.Int("parallel", 0, "worker pool size (0 or negative = GOMAXPROCS, 1 = serial)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	doAudit := fs.Bool("audit", false, "audit invariants over the selected experiments instead of printing tables")
	verbose := fs.Bool("v", false, "print scenario-scheduler stats after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *ids == "" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	if *doAudit {
		sel := make([]string, len(selected))
		for i, e := range selected {
			sel[i] = e.ID
		}
		res, err := audit.Run(context.Background(), audit.Options{
			Iterations:  *iters,
			Seed:        *seed,
			Parallelism: *parallel,
			Experiments: sel,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		if !res.Ok() {
			return fmt.Errorf("audit: %d invariant violations", len(res.Violations))
		}
		return nil
	}

	cfg := experiments.Config{Iterations: *iters, Seed: *seed, Parallelism: *parallel}
	start := time.Now() //lint:allow wallclock CLI wall-time progress line, never enters a stall table
	for _, r := range experiments.RunMany(cfg, selected) {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Experiment.ID, r.Err)
		}
		fmt.Printf("# %s (%s, simulated in %v)\n\n", r.Experiment.Title, r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
		for _, t := range r.Tables {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
	if *verbose {
		fmt.Printf("# scheduler: %v (wall %v)\n",
			//lint:allow wallclock verbose-only scheduler wall time, not part of any table
			experiments.SchedulerStats(cfg), time.Since(start).Round(time.Millisecond))
	}
	return nil
}
