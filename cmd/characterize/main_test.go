package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSelected(t *testing.T) {
	if err := run([]string{"-run", "table1,table2", "-iters", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-run", "fig7", "-csv"}); err != nil {
		t.Fatalf("run -csv: %v", err)
	}
}

func TestRunParallelVerbose(t *testing.T) {
	if err := run([]string{"-run", "fig7,fig11", "-iters", "3", "-parallel", "4", "-v"}); err != nil {
		t.Fatalf("run -parallel 4 -v: %v", err)
	}
}

func TestRunSerialExplicit(t *testing.T) {
	if err := run([]string{"-run", "fig7", "-iters", "3", "-parallel", "1"}); err != nil {
		t.Fatalf("run -parallel 1: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}
