// Command benchcmp diffs two BENCH_*.json files produced by
// scripts/bench.sh and reports per-benchmark deltas, so the perf
// trajectory between commits is a one-command check instead of manual
// JSON spelunking.
//
//	benchcmp [-threshold pct] [-match regexp] old.json new.json
//
// For each benchmark the minimum ns/op over the non-warmup samples is
// compared (samples flagged "warmup": true absorb cold caches and are
// skipped; files from before the flag existed fall back to skipping the
// first sample of each benchmark, which the seed data shows is the cold
// one). Allocation counts are shown when both files carry -benchmem
// fields. -match scopes the comparison (and the threshold gate) to
// benchmarks whose package.Name matches the regexp — CI uses it to
// enforce the stable micro benches while leaving the noisier suite
// benches advisory. The derived parallel_speedup field (SuiteSerial /
// SuiteParallel, emitted by bench.sh) is diffed whenever either file
// carries it — unless a file records "gomaxprocs" below 2, in which
// case the comparison is skipped with a note: on a single-P host the
// parallel suite degenerates to serial execution and the ratio is
// noise, not a speedup (bench.sh omits the field there too). When BOTH
// files record gomaxprocs >= 4 the diff becomes a gate: with four or
// more Ps the parallel suite has real headroom, so a new
// parallel_speedup below 1.5x is a scheduler regression and benchcmp
// exits non-zero. On narrower (but multi-P) hosts the diff stays
// informational — two or three Ps leave too little headroom for a
// stable floor.
//
// Exit status: 0 when no matched benchmark regressed by more than
// -threshold percent and the parallel_speedup floor (when armed) held,
// 1 when at least one failed, 2 on usage or parse errors — including a
// file whose every sample is warmup-flagged, which has no steady state
// to compare (re-run bench.sh with COUNT >= 2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

type benchFile struct {
	Date       string   `json:"date"`
	Benchmarks []sample `json:"benchmarks"`

	// ParallelSpeedup is bench.sh's derived SuiteSerial/SuiteParallel
	// steady-state ns ratio; nil in files from before the field existed
	// and in files recorded on single-P hosts, where the ratio would be
	// noise.
	ParallelSpeedup *float64 `json:"parallel_speedup"`

	// GoMaxProcs is the host's scheduler width at record time; nil in
	// files from before the field existed (treated as multi-P, the
	// historical assumption).
	GoMaxProcs *int `json:"gomaxprocs"`
}

// singleP reports whether a file was recorded on a host without real
// parallelism, making its parallel_speedup (if any) meaningless.
func singleP(f *benchFile) bool {
	return f.GoMaxProcs != nil && *f.GoMaxProcs < 2
}

// minParallelSpeedup is the floor the suite must clear on hosts wide
// enough (gomaxprocs >= minGateProcs in BOTH snapshots) to make the
// ratio a stable signal rather than scheduling noise.
const (
	minParallelSpeedup = 1.5
	minGateProcs       = 4
)

// wideHost reports whether a file was recorded with enough Ps to gate
// on parallel_speedup. Files from before the gomaxprocs field existed
// report false: their width is unknown, so the floor stays unarmed.
func wideHost(f *benchFile) bool {
	return f.GoMaxProcs != nil && *f.GoMaxProcs >= minGateProcs
}

// speedupVerdict classifies the parallel_speedup comparison between two
// files: the line to print, and whether the armed floor was broken.
func speedupVerdict(before, after *benchFile) (line string, failed bool) {
	label := "parallel_speedup (serial/parallel ns)"
	switch {
	case singleP(before) || singleP(after):
		return fmt.Sprintf("%-55s skipped: recorded with GOMAXPROCS < 2, ratio would be noise", label), false
	case before.ParallelSpeedup != nil && after.ParallelSpeedup != nil:
		armed := wideHost(before) && wideHost(after)
		note := ""
		if armed && *after.ParallelSpeedup < minParallelSpeedup {
			note = fmt.Sprintf("  BELOW %.1fx FLOOR", minParallelSpeedup)
			failed = true
		}
		return fmt.Sprintf("%-55s %14.2fx %13.2fx %+8.1f%%%s", label,
			*before.ParallelSpeedup, *after.ParallelSpeedup,
			100*(*after.ParallelSpeedup-*before.ParallelSpeedup) / *before.ParallelSpeedup, note), failed
	case after.ParallelSpeedup != nil:
		return fmt.Sprintf("%-55s %14s %13.2fx %9s", label, "-", *after.ParallelSpeedup, "new"), false
	}
	return "", false
}

type sample struct {
	Name        string   `json:"name"`
	Package     string   `json:"package"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	Warmup      bool     `json:"warmup"`
}

// steady is one benchmark's steady-state summary: the minimum over its
// non-warmup samples. warmOnly marks a benchmark whose every sample was
// a warmup (single-sample runs), kept so the benchmark still appears.
type steady struct {
	nsPerOp  float64
	bytes    *float64
	allocs   *float64
	warmOnly bool
}

// summarize reduces a file's samples to per-benchmark steady state.
// Files written before the warmup flag existed have no flagged samples;
// for those the first sample of each benchmark is treated as the warmup.
func summarize(f *benchFile) map[string]steady {
	flagged := false
	for _, s := range f.Benchmarks {
		if s.Warmup {
			flagged = true
			break
		}
	}
	seen := map[string]int{}
	out := map[string]steady{}
	for _, s := range f.Benchmarks {
		key := s.Package + "." + s.Name
		idx := seen[key]
		seen[key] = idx + 1
		warm := s.Warmup || (!flagged && idx == 0)
		cur, have := out[key]
		// A steady sample always beats a warmup-only entry; among steady
		// samples the minimum ns/op wins.
		if have && (warm || (!cur.warmOnly && cur.nsPerOp <= s.NsPerOp)) {
			continue
		}
		out[key] = steady{nsPerOp: s.NsPerOp, bytes: s.BytesPerOp, allocs: s.AllocsPerOp, warmOnly: warm}
	}
	return out
}

// allWarmup reports whether a non-empty summary has no steady-state
// sample at all — every benchmark fell back to its warmup sample, so a
// min-of-steady comparison would silently compare cold-cache noise.
func allWarmup(m map[string]steady) bool {
	if len(m) == 0 {
		return false
	}
	for _, s := range m {
		if !s.warmOnly {
			return false
		}
	}
	return true
}

// filterMatch keeps only the benchmarks whose package.Name key matches re.
func filterMatch(m map[string]steady, re *regexp.Regexp) map[string]steady {
	out := make(map[string]steady, len(m))
	for k, v := range m {
		if re.MatchString(k) {
			out[k] = v
		}
	}
	return out
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compare renders the delta table and returns the keys that regressed
// by more than threshold percent (negative threshold disables).
func compare(w io.Writer, before, after map[string]steady, threshold float64) []string {
	keys := map[string]bool{}
	for k := range before {
		keys[k] = true
	}
	for k := range after {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var regressed []string
	fmt.Fprintf(w, "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, k := range sorted {
		o, haveOld := before[k]
		n, haveNew := after[k]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-55s %14s %14.0f %9s\n", k, "-", n.nsPerOp, "new")
		case !haveNew:
			fmt.Fprintf(w, "%-55s %14.0f %14s %9s\n", k, o.nsPerOp, "-", "gone")
		default:
			delta := 100 * (n.nsPerOp - o.nsPerOp) / o.nsPerOp
			note := ""
			if threshold >= 0 && delta > threshold {
				note = "  REGRESSED"
				regressed = append(regressed, k)
			}
			fmt.Fprintf(w, "%-55s %14.0f %14.0f %+8.1f%%%s\n", k, o.nsPerOp, n.nsPerOp, delta, note)
			//lint:allow floatcmp allocs/op are integer counts decoded from JSON, compared to the literal 0
			if o.allocs != nil && n.allocs != nil && (*o.allocs != 0 || *n.allocs != 0) {
				fmt.Fprintf(w, "%-55s %14.0f %14.0f  allocs/op\n", "", *o.allocs, *n.allocs)
			}
		}
	}
	return regressed
}

func main() {
	threshold := flag.Float64("threshold", 10, "fail when any benchmark's steady-state ns/op regresses by more than this percent; negative disables")
	match := flag.String("match", "", "only compare benchmarks whose package.Name matches this regexp")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [-threshold pct] [-match regexp] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	before, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	after, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	oldSum, newSum := summarize(before), summarize(after)
	for i, sum := range []map[string]steady{oldSum, newSum} {
		if allWarmup(sum) {
			fmt.Fprintf(os.Stderr, "benchcmp: every sample in %s is warmup-flagged — no steady state to compare; re-run scripts/bench.sh with COUNT >= 2\n", flag.Arg(i))
			os.Exit(2)
		}
	}
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -match: %v\n", err)
			os.Exit(2)
		}
		oldSum, newSum = filterMatch(oldSum, re), filterMatch(newSum, re)
	}
	fmt.Printf("benchcmp %s (%s) -> %s (%s)\n", flag.Arg(0), before.Date, flag.Arg(1), after.Date)
	regressed := compare(os.Stdout, oldSum, newSum, *threshold)
	// The headline tentpole metric: informational on narrow hosts, a
	// hard floor when both snapshots came from gomaxprocs >= 4 hosts.
	line, speedupFailed := speedupVerdict(before, after)
	if line != "" {
		fmt.Println(line)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d benchmark(s) regressed beyond %.1f%%\n", len(regressed), *threshold)
	}
	if speedupFailed {
		fmt.Fprintf(os.Stderr, "benchcmp: parallel_speedup %.2fx is below the %.1fx floor (both snapshots recorded with gomaxprocs >= %d)\n",
			*after.ParallelSpeedup, minParallelSpeedup, minGateProcs)
	}
	if len(regressed) > 0 || speedupFailed {
		os.Exit(1)
	}
}
