package main

import (
	"strings"
	"testing"
)

func fileOf(samples ...sample) *benchFile {
	return &benchFile{Date: "20260805", Benchmarks: samples}
}

func s(name string, ns float64, warmup bool) sample {
	return sample{Name: name, Package: "stash/internal/sim", NsPerOp: ns, Warmup: warmup}
}

func TestSummarizeSkipsFlaggedWarmup(t *testing.T) {
	f := fileOf(
		s("BenchmarkX", 9000, true),
		s("BenchmarkX", 2000, false),
		s("BenchmarkX", 1500, false),
	)
	st := summarize(f)
	got := st["stash/internal/sim.BenchmarkX"]
	if got.nsPerOp != 1500 || got.warmOnly {
		t.Fatalf("steady = %+v, want min non-warmup 1500", got)
	}
}

func TestSummarizeLegacyFirstSampleIsWarmup(t *testing.T) {
	// No sample carries the warmup flag (pre-flag BENCH files): the first
	// sample per benchmark is the cold one and must be skipped.
	f := fileOf(
		s("BenchmarkX", 33718283763, false),
		s("BenchmarkX", 1714039387, false),
		s("BenchmarkX", 1709688592, false),
	)
	st := summarize(f)
	if got := st["stash/internal/sim.BenchmarkX"].nsPerOp; got != 1709688592 {
		t.Fatalf("legacy steady = %v, want 1709688592", got)
	}
}

func TestSummarizeWarmupOnlySurvives(t *testing.T) {
	f := fileOf(s("BenchmarkX", 5000, true))
	st := summarize(f)
	got, ok := st["stash/internal/sim.BenchmarkX"]
	if !ok || !got.warmOnly || got.nsPerOp != 5000 {
		t.Fatalf("warmup-only benchmark lost: %+v ok=%v", got, ok)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1000, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1200, false)))
	var buf strings.Builder
	regressed := compare(&buf, before, after, 10)
	if len(regressed) != 1 {
		t.Fatalf("regressed = %v, want 1 entry (out:\n%s)", regressed, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("output missing REGRESSED marker:\n%s", buf.String())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1000, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1050, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, 10); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1573, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 478, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, 0); len(regressed) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regressed)
	}
	if !strings.Contains(buf.String(), "-69.6%") {
		t.Fatalf("expected -69.6%% delta in output:\n%s", buf.String())
	}
}

func TestCompareNegativeThresholdDisables(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 100, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 10000, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, -1); len(regressed) != 0 {
		t.Fatalf("negative threshold still failed: %v", regressed)
	}
}

func TestCompareNewAndGoneBenchmarks(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkOld", 0, true), s("BenchmarkOld", 100, false)))
	after := summarize(fileOf(s("BenchmarkNew", 0, true), s("BenchmarkNew", 200, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, 10); len(regressed) != 0 {
		t.Fatalf("appearing/disappearing benchmarks must not fail: %v", regressed)
	}
	out := buf.String()
	if !strings.Contains(out, "new") || !strings.Contains(out, "gone") {
		t.Fatalf("output missing new/gone markers:\n%s", out)
	}
}

func TestCompareShowsAllocs(t *testing.T) {
	allocs := func(v float64) *float64 { return &v }
	before := map[string]steady{"p.B": {nsPerOp: 100, allocs: allocs(7)}}
	after := map[string]steady{"p.B": {nsPerOp: 90, allocs: allocs(0)}}
	var buf strings.Builder
	compare(&buf, before, after, 10)
	if !strings.Contains(buf.String(), "allocs/op") {
		t.Fatalf("allocs line missing:\n%s", buf.String())
	}
}

// speedupFile builds a benchFile carrying only the derived
// parallel_speedup and gomaxprocs fields the floor gate reads.
func speedupFile(speedup float64, procs int) *benchFile {
	return &benchFile{Date: "20260808", ParallelSpeedup: &speedup, GoMaxProcs: &procs}
}

func TestSpeedupGateFailsBelowFloorOnWideHosts(t *testing.T) {
	line, failed := speedupVerdict(speedupFile(2.1, 8), speedupFile(1.2, 8))
	if !failed {
		t.Fatal("1.2x on 8-P hosts should break the 1.5x floor")
	}
	if !strings.Contains(line, "BELOW 1.5x FLOOR") {
		t.Errorf("line lacks floor note: %q", line)
	}
}

func TestSpeedupGatePassesAboveFloor(t *testing.T) {
	line, failed := speedupVerdict(speedupFile(2.1, 8), speedupFile(1.8, 4))
	if failed {
		t.Fatalf("1.8x should clear the floor: %q", line)
	}
	if !strings.Contains(line, "1.80x") {
		t.Errorf("diff line missing new ratio: %q", line)
	}
}

func TestSpeedupGateUnarmedOnNarrowHosts(t *testing.T) {
	// 2-P and 3-P hosts diff informationally but never gate.
	if line, failed := speedupVerdict(speedupFile(2.1, 8), speedupFile(1.1, 2)); failed {
		t.Fatalf("2-P snapshot must not arm the floor: %q", line)
	}
	if line, failed := speedupVerdict(speedupFile(1.1, 3), speedupFile(1.1, 8)); failed {
		t.Fatalf("3-P old snapshot must not arm the floor: %q", line)
	}
}

func TestSpeedupGateUnarmedWhenWidthUnknown(t *testing.T) {
	old := speedupFile(2.0, 8)
	old.GoMaxProcs = nil // pre-field file: width unknown
	if line, failed := speedupVerdict(old, speedupFile(1.1, 8)); failed {
		t.Fatalf("unknown-width snapshot must not arm the floor: %q", line)
	}
}

func TestSpeedupSinglePStillSkipsWithNote(t *testing.T) {
	line, failed := speedupVerdict(speedupFile(2.0, 8), speedupFile(1.0, 1))
	if failed {
		t.Fatal("single-P snapshots must skip, not fail")
	}
	if !strings.Contains(line, "skipped") || !strings.Contains(line, "GOMAXPROCS < 2") {
		t.Errorf("missing skip note: %q", line)
	}
}
