package main

import (
	"strings"
	"testing"
)

func fileOf(samples ...sample) *benchFile {
	return &benchFile{Date: "20260805", Benchmarks: samples}
}

func s(name string, ns float64, warmup bool) sample {
	return sample{Name: name, Package: "stash/internal/sim", NsPerOp: ns, Warmup: warmup}
}

func TestSummarizeSkipsFlaggedWarmup(t *testing.T) {
	f := fileOf(
		s("BenchmarkX", 9000, true),
		s("BenchmarkX", 2000, false),
		s("BenchmarkX", 1500, false),
	)
	st := summarize(f)
	got := st["stash/internal/sim.BenchmarkX"]
	if got.nsPerOp != 1500 || got.warmOnly {
		t.Fatalf("steady = %+v, want min non-warmup 1500", got)
	}
}

func TestSummarizeLegacyFirstSampleIsWarmup(t *testing.T) {
	// No sample carries the warmup flag (pre-flag BENCH files): the first
	// sample per benchmark is the cold one and must be skipped.
	f := fileOf(
		s("BenchmarkX", 33718283763, false),
		s("BenchmarkX", 1714039387, false),
		s("BenchmarkX", 1709688592, false),
	)
	st := summarize(f)
	if got := st["stash/internal/sim.BenchmarkX"].nsPerOp; got != 1709688592 {
		t.Fatalf("legacy steady = %v, want 1709688592", got)
	}
}

func TestSummarizeWarmupOnlySurvives(t *testing.T) {
	f := fileOf(s("BenchmarkX", 5000, true))
	st := summarize(f)
	got, ok := st["stash/internal/sim.BenchmarkX"]
	if !ok || !got.warmOnly || got.nsPerOp != 5000 {
		t.Fatalf("warmup-only benchmark lost: %+v ok=%v", got, ok)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1000, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1200, false)))
	var buf strings.Builder
	regressed := compare(&buf, before, after, 10)
	if len(regressed) != 1 {
		t.Fatalf("regressed = %v, want 1 entry (out:\n%s)", regressed, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("output missing REGRESSED marker:\n%s", buf.String())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1000, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1050, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, 10); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 1573, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 478, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, 0); len(regressed) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regressed)
	}
	if !strings.Contains(buf.String(), "-69.6%") {
		t.Fatalf("expected -69.6%% delta in output:\n%s", buf.String())
	}
}

func TestCompareNegativeThresholdDisables(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 100, false)))
	after := summarize(fileOf(s("BenchmarkX", 0, true), s("BenchmarkX", 10000, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, -1); len(regressed) != 0 {
		t.Fatalf("negative threshold still failed: %v", regressed)
	}
}

func TestCompareNewAndGoneBenchmarks(t *testing.T) {
	before := summarize(fileOf(s("BenchmarkOld", 0, true), s("BenchmarkOld", 100, false)))
	after := summarize(fileOf(s("BenchmarkNew", 0, true), s("BenchmarkNew", 200, false)))
	var buf strings.Builder
	if regressed := compare(&buf, before, after, 10); len(regressed) != 0 {
		t.Fatalf("appearing/disappearing benchmarks must not fail: %v", regressed)
	}
	out := buf.String()
	if !strings.Contains(out, "new") || !strings.Contains(out, "gone") {
		t.Fatalf("output missing new/gone markers:\n%s", out)
	}
}

func TestCompareShowsAllocs(t *testing.T) {
	allocs := func(v float64) *float64 { return &v }
	before := map[string]steady{"p.B": {nsPerOp: 100, allocs: allocs(7)}}
	after := map[string]steady{"p.B": {nsPerOp: 90, allocs: allocs(0)}}
	var buf strings.Builder
	compare(&buf, before, after, 10)
	if !strings.Contains(buf.String(), "allocs/op") {
		t.Fatalf("allocs line missing:\n%s", buf.String())
	}
}
