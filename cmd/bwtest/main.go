// Command bwtest reproduces the paper's Fig 7 methodology: it measures
// the PCIe bandwidth each GPU of an instance achieves when every GPU
// transfers concurrently (the CUDA bandwidthTest equivalent, §V-A1).
//
// Usage:
//
//	bwtest [-instance p2.16xlarge] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwtest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwtest", flag.ContinueOnError)
	instance := fs.String("instance", "p2.16xlarge", "instance type to probe")
	all := fs.Bool("all", false, "probe every catalog instance")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var targets []cloud.InstanceType
	if *all {
		targets = cloud.Catalog()
	} else {
		it, err := cloud.ByName(*instance)
		if err != nil {
			return err
		}
		targets = []cloud.InstanceType{it}
	}

	p := core.New()
	t := report.NewTable("Per-GPU host-to-device bandwidth (all GPUs concurrent)",
		"instance", "GPUs", "per-GPU bandwidth", "aggregate")
	for _, it := range targets {
		probe, err := p.PCIeBandwidthProbe(it)
		if err != nil {
			return err
		}
		var agg float64
		for _, bw := range probe.PerGPU {
			agg += bw
		}
		t.AddRow(it.Name, fmt.Sprintf("%d", it.NGPUs),
			report.GBps(probe.MinPerGPU()), report.GBps(agg))
	}
	fmt.Print(t.String())
	return nil
}
