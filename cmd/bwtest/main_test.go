package main

import "testing"

func TestSingleInstance(t *testing.T) {
	if err := run([]string{"-instance", "p2.8xlarge"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestAllInstances(t *testing.T) {
	if err := run([]string{"-all"}); err != nil {
		t.Fatalf("run -all: %v", err)
	}
}

func TestUnknownInstance(t *testing.T) {
	if err := run([]string{"-instance", "t2.micro"}); err == nil {
		t.Error("unknown instance should fail")
	}
}
