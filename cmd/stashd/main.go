// Command stashd is the long-running Stash profiling service: the
// profiler, the recommendation engine and all 25 paper artifacts served
// over a versioned JSON API (see docs/API.md for the full contract).
//
// Usage:
//
//	stashd [-addr :8321] [-iters N] [-exp-iters N] [-seed S]
//	       [-parallel N] [-max-concurrent N]
//	       [-request-timeout D] [-drain-timeout D]
//
// Endpoints:
//
//	POST /v1/profile              four stalls + epoch cost for one workload
//	POST /v1/recommend            ranked configurations under constraints
//	GET  /v1/experiments          the paper-artifact registry
//	GET  /v1/experiments/{id}     run one artifact, tables as JSON
//	GET  /healthz                 liveness probe
//	GET  /healthz?deep=1          bounded invariant audit + live pool checks
//	GET  /metrics                 Prometheus text counters
//
// All requests share one single-flight memoized profiler, so repeated
// and concurrent requests for overlapping scenarios simulate each
// distinct scenario exactly once. On SIGTERM/SIGINT the server stops
// accepting connections and drains in-flight profiles for up to
// -drain-timeout before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"stash/internal/api"
	"stash/internal/core"
	"stash/internal/experiments"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stashd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until the listener fails or ctx is
// cancelled (the signal context in main); it then drains in-flight
// requests before returning.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stashd", flag.ContinueOnError)
	addr := fs.String("addr", ":8321", "listen address")
	iters := fs.Int("iters", core.DefaultIterations, "profiling iterations per scenario (profile/recommend)")
	expIters := fs.Int("exp-iters", experiments.DefaultConfig().Iterations, "profiling iterations per scenario (experiments)")
	seed := fs.Int64("seed", 1, "provisioning seed")
	parallel := fs.Int("parallel", 0, "per-request worker pool size (0 or negative = GOMAXPROCS, 1 = serial)")
	maxConc := fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "concurrent heavy requests (profile/recommend/experiment)")
	reqTimeout := fs.Duration("request-timeout", api.DefaultRequestTimeout, "per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := api.New(
		api.WithIterations(*iters),
		api.WithExperimentIterations(*expIters),
		api.WithSeed(*seed),
		api.WithParallelism(*parallel),
		api.WithMaxConcurrent(*maxConc),
		api.WithRequestTimeout(*reqTimeout),
	)
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(out, "stashd: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "stashd: shutting down, draining in-flight requests")
	//lint:allow ctxflow the serve ctx is already cancelled here; the drain deadline must outlive it
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "stashd: drained, exiting")
	return nil
}
