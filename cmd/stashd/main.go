// Command stashd is the long-running Stash profiling service: the
// profiler, the recommendation engine and all 25 paper artifacts served
// over a versioned JSON API (see docs/API.md for the API contract and
// docs/OPERATIONS.md for the operator guide).
//
// Usage:
//
//	stashd [-addr :8321] [-iters N] [-exp-iters N] [-seed S]
//	       [-parallel N] [-max-concurrent N]
//	       [-request-timeout D] [-drain-timeout D]
//	       [-job-workers N] [-job-ttl D] [-max-jobs N]
//	       [-tenant-quota N] [-tenant-weights name=w,...]
//	       [-peers url,url,... -cluster-addr :8322 [-cluster-advertise URL]]
//
// Cluster mode: -peers lists every replica's cluster base URL (this
// replica included, same set on every replica); -cluster-addr is the
// peer-protocol listener and -cluster-advertise the URL peers reach it
// at (default http://<cluster-addr>). Scenario keys shard across
// replicas on a consistent-hash ring with cluster-wide single-flight,
// and idle replicas steal grid-sweep cells from busy ones; see
// docs/OPERATIONS.md for topology and failure semantics.
//
// Endpoints:
//
//	POST   /v1/profile              four stalls + epoch cost for one workload
//	POST   /v1/recommend            ranked configurations under constraints
//	GET    /v1/experiments          the paper-artifact registry
//	GET    /v1/experiments/{id}     run one artifact, tables as JSON
//	POST   /v2/jobs                 submit an asynchronous job (202 + id)
//	GET    /v2/jobs                 list the tenant's jobs (?state= filter)
//	GET    /v2/jobs/{id}            job status snapshot with progress
//	GET    /v2/jobs/{id}/result     replay a terminal job's exact result
//	GET    /v2/jobs/{id}/events     SSE progress stream to the terminal event
//	DELETE /v2/jobs/{id}            cancel a queued or running job
//	GET    /healthz                 liveness probe
//	GET    /healthz?deep=1          bounded invariant audit + live pool checks
//	GET    /metrics                 Prometheus text counters
//
// All requests share one single-flight memoized profiler, so repeated
// and concurrent requests for overlapping scenarios simulate each
// distinct scenario exactly once. Jobs are scoped to the tenant named
// by the X-Stash-Tenant header and scheduled by a two-level weighted
// fair queue on a worker pool separate from the v1 concurrency gate.
// On SIGTERM/SIGINT the server rejects new jobs, cancels queued ones,
// gives running jobs and in-flight requests up to -drain-timeout to
// settle, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"stash/internal/api"
	"stash/internal/cluster"
	"stash/internal/core"
	"stash/internal/experiments"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stashd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until the listener fails or ctx is
// cancelled (the signal context in main); it then drains in-flight
// requests before returning.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stashd", flag.ContinueOnError)
	addr := fs.String("addr", ":8321", "listen address")
	iters := fs.Int("iters", core.DefaultIterations, "profiling iterations per scenario (profile/recommend)")
	expIters := fs.Int("exp-iters", experiments.DefaultConfig().Iterations, "profiling iterations per scenario (experiments)")
	seed := fs.Int64("seed", 1, "provisioning seed")
	parallel := fs.Int("parallel", 0, "per-request worker pool size (0 or negative = GOMAXPROCS, 1 = serial)")
	maxConc := fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "concurrent heavy requests (profile/recommend/experiment)")
	reqTimeout := fs.Duration("request-timeout", api.DefaultRequestTimeout, "per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window")
	jobWorkers := fs.Int("job-workers", api.DefaultJobWorkers, "v2 job executor pool size")
	jobTTL := fs.Duration("job-ttl", api.DefaultJobTTL, "retention window for terminal v2 jobs")
	maxJobs := fs.Int("max-jobs", api.DefaultJobStoreMax, "v2 job store capacity (live + retained terminal jobs)")
	tenantQuota := fs.Int("tenant-quota", api.DefaultTenantQuota, "concurrent live (queued+running) v2 jobs per tenant")
	tenantWeights := fs.String("tenant-weights", "", "fair-queue tenant weights as name=w,name=w (default weight 1)")
	peers := fs.String("peers", "", "cluster replica base URLs, comma-separated (this replica included); empty = standalone")
	clusterAddr := fs.String("cluster-addr", ":8322", "cluster peer-protocol listen address (with -peers)")
	clusterAdvertise := fs.String("cluster-advertise", "", "URL peers reach this replica's cluster listener at (default http://<cluster-addr>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		return err
	}

	opts := []api.Option{
		api.WithIterations(*iters),
		api.WithExperimentIterations(*expIters),
		api.WithSeed(*seed),
		api.WithParallelism(*parallel),
		api.WithMaxConcurrent(*maxConc),
		api.WithRequestTimeout(*reqTimeout),
		api.WithJobWorkers(*jobWorkers),
		api.WithJobTTL(*jobTTL),
		api.WithJobStoreMax(*maxJobs),
		api.WithTenantQuota(*tenantQuota),
	}
	for _, tw := range weights {
		opts = append(opts, api.WithTenantWeight(tw.name, tw.weight))
	}

	// Cluster mode: build the node first (api.New starts it with the
	// serving backend) and put its peer protocol on its own listener,
	// so operator traffic and replica traffic never share a port.
	var node *cluster.Node
	var clusterLn net.Listener
	if *peers != "" {
		clusterLn, err = net.Listen("tcp", *clusterAddr)
		if err != nil {
			return err
		}
		self := *clusterAdvertise
		if self == "" {
			self = "http://" + clusterLn.Addr().String()
		}
		node, err = cluster.New(cluster.Config{Self: self, Peers: strings.Split(*peers, ",")})
		if err != nil {
			clusterLn.Close()
			return err
		}
		opts = append(opts, api.WithCluster(node))
	}

	srv := api.New(opts...)
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if clusterLn != nil {
			clusterLn.Close()
		}
		return err
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(out, "stashd: listening on %s\n", ln.Addr())

	var chs *http.Server
	clusterErr := make(chan error, 1)
	if node != nil {
		chs = &http.Server{
			Handler:           node.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { clusterErr <- chs.Serve(clusterLn) }()
		fmt.Fprintf(out, "stashd: cluster protocol on %s as %s (%d replicas)\n",
			clusterLn.Addr(), node.Self(), node.PeerCount()+1)
	}

	select {
	case err := <-serveErr:
		return err
	case err := <-clusterErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "stashd: shutting down, draining jobs and in-flight requests")
	//lint:allow ctxflow the serve ctx is already cancelled here; the drain deadline must outlive it
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order matters: first announce draining to peers and hand
	// queued stolen cells back to their owners (node.Drain), then settle
	// local jobs (srv.Drain) while both listeners still answer, and only
	// then stop accepting connections.
	if node != nil {
		node.Drain(dctx)
	}
	srv.Drain(dctx)
	if chs != nil {
		if err := chs.Shutdown(dctx); err != nil {
			return fmt.Errorf("cluster drain: %w", err)
		}
	}
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if node != nil {
		node.Stop()
		if err := <-clusterErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "stashd: drained, exiting")
	return nil
}

// tenantWeight is one -tenant-weights entry.
type tenantWeight struct {
	name   string
	weight int
}

// parseTenantWeights parses "name=w,name=w" into ordered entries.
func parseTenantWeights(s string) ([]tenantWeight, error) {
	if s == "" {
		return nil, nil
	}
	var out []tenantWeight
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant-weights: %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant-weights: %q needs a positive integer weight", part)
		}
		out = append(out, tenantWeight{name: name, weight: w})
	}
	return out, nil
}
