package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeAndShutdown runs the full lifecycle: boot on an ephemeral
// port, answer a health probe and a profile, then cancel the signal
// context and verify the drain path exits cleanly.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-iters", "4"}, pw)
		pw.Close()
	}()

	lines := bufio.NewReader(pr)
	first, err := lines.ReadString('\n')
	if err != nil {
		t.Fatalf("read banner: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(first, "stashd: listening on "))
	if addr == first {
		t.Fatalf("unexpected banner %q", first)
	}
	// Keep draining the pipe so the shutdown banners never block run.
	go io.Copy(io.Discard, lines)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/profile", "application/json",
		strings.NewReader(`{"model":"resnet18","instance":"p3.2xlarge"}`))
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

func TestRunFlagError(t *testing.T) {
	if err := run(context.Background(), []string{"-badflag"}, io.Discard); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunListenError(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:notaport"}, io.Discard); err == nil {
		t.Fatal("bad address should fail")
	}
}
